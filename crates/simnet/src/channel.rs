//! The lossy broadcast channel.
//!
//! Each receiving node has a [`ChannelModel`] describing what the medium
//! does to frames addressed to it: loss (independent Bernoulli or bursty
//! Gilbert-Elliott), fixed propagation delay, and uniform jitter. This is
//! the "communication lossy channels" / "low QoS channels" knob of the
//! paper's evaluation — bursty loss in particular is what makes the
//! chain-recovery machinery of the TESLA family (and EFTP/EDRP) matter.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// How frames get lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent loss with a fixed probability.
    Bernoulli {
        /// Per-frame loss probability in `[0, 1]`.
        loss: f64,
    },
    /// The classic two-state burst model: a *good* and a *bad* state
    /// with per-state loss probabilities and geometric sojourn times.
    /// Mean loss at steady state is
    /// `π_bad·loss_bad + (1−π_bad)·loss_good` with
    /// `π_bad = to_bad/(to_bad + to_good)`.
    GilbertElliott {
        /// P(good → bad) per frame.
        to_bad: f64,
        /// P(bad → good) per frame.
        to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
        /// Current state (evolves as frames pass).
        in_bad: bool,
    },
}

impl LossModel {
    /// Samples the fate of one frame (`true` = lost), advancing burst
    /// state where applicable.
    pub fn sample(&mut self, rng: &mut SimRng) -> bool {
        match self {
            LossModel::Bernoulli { loss } => rng.chance(*loss),
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                loss_good,
                loss_bad,
                in_bad,
            } => {
                // Transition first, then lose according to the new state.
                if *in_bad {
                    if rng.chance(*to_good) {
                        *in_bad = false;
                    }
                } else if rng.chance(*to_bad) {
                    *in_bad = true;
                }
                let p = if *in_bad { *loss_bad } else { *loss_good };
                rng.chance(p)
            }
        }
    }

    /// Asserts that every probability field is in `[0, 1]` (NaN fails
    /// the range check and panics too).
    fn validate(&self) {
        let fields: &[(&str, f64)] = match self {
            LossModel::Bernoulli { loss } => &[("loss", *loss)],
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                loss_good,
                loss_bad,
                ..
            } => &[
                ("to_bad", *to_bad),
                ("to_good", *to_good),
                ("loss_good", *loss_good),
                ("loss_bad", *loss_bad),
            ],
        };
        for (name, v) in fields {
            assert!((0.0..=1.0).contains(v), "{name} must be in [0,1], got {v}");
        }
    }

    /// Long-run average loss probability.
    #[must_use]
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossModel::Bernoulli { loss } => *loss,
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                loss_good,
                loss_bad,
                ..
            } => {
                let denom = to_bad + to_good;
                if denom == 0.0 {
                    // No transitions ever: stuck in the initial state;
                    // report the good-state loss (the constructor starts
                    // in the good state).
                    *loss_good
                } else {
                    let pi_bad = to_bad / denom;
                    pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
                }
            }
        }
    }
}

/// Per-receiver channel behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelModel {
    loss: LossModel,
    /// Fixed propagation delay applied to every delivered frame.
    delay: SimDuration,
    /// Additional uniform random delay in `[0, jitter]`.
    jitter: SimDuration,
}

impl ChannelModel {
    /// A lossless, instantaneous channel — useful in unit tests.
    #[must_use]
    pub fn perfect() -> Self {
        Self {
            loss: LossModel::Bernoulli { loss: 0.0 },
            delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
        }
    }

    /// A channel losing each frame independently with probability
    /// `loss_probability`, delivering instantly otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `loss_probability` is not a probability.
    #[must_use]
    pub fn lossy(loss_probability: f64) -> Self {
        Self::perfect().with_loss(loss_probability)
    }

    /// Replaces the loss process with independent Bernoulli loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss_probability` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn with_loss(mut self, loss_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability must be in [0,1], got {loss_probability}"
        );
        self.loss = LossModel::Bernoulli {
            loss: loss_probability,
        };
        self
    }

    /// Replaces the loss process with a Gilbert-Elliott burst model that
    /// starts in the good state and loses nothing there.
    ///
    /// # Panics
    ///
    /// Panics if any argument is not a probability.
    #[must_use]
    pub fn with_burst_loss(mut self, to_bad: f64, to_good: f64, loss_bad: f64) -> Self {
        for (name, v) in [
            ("to_bad", to_bad),
            ("to_good", to_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        self.loss = LossModel::GilbertElliott {
            to_bad,
            to_good,
            loss_good: 0.0,
            loss_bad,
            in_bad: false,
        };
        self
    }

    /// Replaces the loss process wholesale.
    ///
    /// # Panics
    ///
    /// Panics if any probability field of `loss` is NaN or outside
    /// `[0, 1]` — the same contract the dedicated constructors enforce.
    #[must_use]
    pub fn with_loss_model(mut self, loss: LossModel) -> Self {
        loss.validate();
        self.loss = loss;
        self
    }

    /// Replaces the fixed propagation delay.
    #[must_use]
    pub fn with_delay(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Replaces the jitter bound.
    #[must_use]
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// The long-run average loss probability of the loss process.
    #[must_use]
    pub fn loss_probability(&self) -> f64 {
        self.loss.mean_loss()
    }

    /// The configured loss process.
    #[must_use]
    pub fn loss_model(&self) -> &LossModel {
        &self.loss
    }

    /// The configured fixed delay.
    #[must_use]
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// The configured jitter bound.
    #[must_use]
    pub fn jitter(&self) -> SimDuration {
        self.jitter
    }

    /// Samples the fate of one frame: `None` if lost, otherwise the total
    /// delivery latency. Burst-loss state advances with each call.
    #[must_use]
    pub fn sample(&mut self, rng: &mut SimRng) -> Option<SimDuration> {
        if self.loss.sample(rng) {
            return None;
        }
        let jitter = if self.jitter.ticks() == 0 {
            SimDuration::ZERO
        } else {
            SimDuration(rng.below(self.jitter.ticks() + 1))
        };
        Some(self.delay + jitter)
    }
}

impl Default for ChannelModel {
    fn default() -> Self {
        Self::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_always_delivers_instantly() {
        let mut ch = ChannelModel::perfect();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(ch.sample(&mut rng), Some(SimDuration::ZERO));
        }
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut ch = ChannelModel::lossy(0.25);
        let mut rng = SimRng::new(2);
        let lost = (0..10_000)
            .filter(|_| ch.sample(&mut rng).is_none())
            .count();
        assert!((2_200..2_800).contains(&lost), "lost={lost}");
    }

    #[test]
    fn delay_and_jitter_bounds() {
        let mut ch = ChannelModel::perfect()
            .with_delay(SimDuration(10))
            .with_jitter(SimDuration(5));
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let d = ch.sample(&mut rng).unwrap();
            assert!((10..=15).contains(&d.ticks()), "delay {d}");
        }
    }

    #[test]
    fn total_loss_never_delivers() {
        let mut ch = ChannelModel::lossy(1.0);
        let mut rng = SimRng::new(4);
        assert!(ch.sample(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_panics() {
        let _ = ChannelModel::lossy(1.5);
    }

    #[test]
    fn accessors_roundtrip() {
        let ch = ChannelModel::lossy(0.1)
            .with_delay(SimDuration(2))
            .with_jitter(SimDuration(3));
        assert!((ch.loss_probability() - 0.1).abs() < 1e-12);
        assert_eq!(ch.delay(), SimDuration(2));
        assert_eq!(ch.jitter(), SimDuration(3));
    }

    #[test]
    fn gilbert_elliott_mean_loss_matches_steady_state() {
        // π_bad = 0.05/(0.05+0.20) = 0.2 → mean loss = 0.2·0.9 = 0.18.
        let mut ch = ChannelModel::perfect().with_burst_loss(0.05, 0.20, 0.9);
        assert!((ch.loss_probability() - 0.18).abs() < 1e-12);
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let lost = (0..n).filter(|_| ch.sample(&mut rng).is_none()).count();
        let rate = lost as f64 / f64::from(n);
        assert!((rate - 0.18).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare run-length of losses against Bernoulli at the same
        // mean: bursts make consecutive losses far more likely.
        fn consecutive_loss_pairs(ch: &mut ChannelModel, rng: &mut SimRng, n: u32) -> u32 {
            let mut pairs = 0;
            let mut prev_lost = false;
            for _ in 0..n {
                let lost = ch.sample(rng).is_none();
                if lost && prev_lost {
                    pairs += 1;
                }
                prev_lost = lost;
            }
            pairs
        }
        let mut bursty = ChannelModel::perfect().with_burst_loss(0.05, 0.20, 0.9);
        let mut uniform = ChannelModel::lossy(bursty.loss_probability());
        let mut rng1 = SimRng::new(6);
        let mut rng2 = SimRng::new(6);
        let bursty_pairs = consecutive_loss_pairs(&mut bursty, &mut rng1, 50_000);
        let uniform_pairs = consecutive_loss_pairs(&mut uniform, &mut rng2, 50_000);
        assert!(
            bursty_pairs > uniform_pairs * 2,
            "bursty {bursty_pairs} vs uniform {uniform_pairs}"
        );
    }

    #[test]
    fn gilbert_elliott_degenerate_no_transitions() {
        let model = LossModel::GilbertElliott {
            to_bad: 0.0,
            to_good: 0.0,
            loss_good: 0.1,
            loss_bad: 0.9,
            in_bad: false,
        };
        assert!((model.mean_loss() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "to_bad must be in [0,1]")]
    fn burst_loss_validates() {
        let _ = ChannelModel::perfect().with_burst_loss(1.5, 0.2, 0.9);
    }

    #[test]
    fn loss_model_accessor() {
        let ch = ChannelModel::perfect().with_burst_loss(0.1, 0.2, 0.8);
        assert!(matches!(ch.loss_model(), LossModel::GilbertElliott { .. }));
    }

    #[test]
    fn with_loss_model_accepts_valid_models() {
        let ch = ChannelModel::perfect().with_loss_model(LossModel::Bernoulli { loss: 0.4 });
        assert!((ch.loss_probability() - 0.4).abs() < 1e-12);
        let ch = ChannelModel::perfect().with_loss_model(LossModel::GilbertElliott {
            to_bad: 0.05,
            to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 0.9,
            in_bad: false,
        });
        assert!(matches!(ch.loss_model(), LossModel::GilbertElliott { .. }));
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn with_loss_model_rejects_nan_bernoulli() {
        let _ = ChannelModel::perfect().with_loss_model(LossModel::Bernoulli { loss: f64::NAN });
    }

    #[test]
    #[should_panic(expected = "to_good must be in [0,1]")]
    fn with_loss_model_rejects_out_of_range_burst() {
        let _ = ChannelModel::perfect().with_loss_model(LossModel::GilbertElliott {
            to_bad: 0.1,
            to_good: -0.2,
            loss_good: 0.0,
            loss_bad: 0.9,
            in_bad: false,
        });
    }

    #[test]
    #[should_panic(expected = "loss_bad must be in [0,1]")]
    fn with_loss_model_rejects_infinite_loss_bad() {
        let _ = ChannelModel::perfect().with_loss_model(LossModel::GilbertElliott {
            to_bad: 0.1,
            to_good: 0.2,
            loss_good: 0.0,
            loss_bad: f64::INFINITY,
            in_bad: false,
        });
    }
}
