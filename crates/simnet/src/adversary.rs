//! Flooding-adversary arithmetic.
//!
//! The paper parameterises attacks by `x_a`, the fraction of channel
//! bandwidth the attacker consumes, and notes `p = x_a`: the fraction of
//! *forged* packets among all packets a receiver sees equals the
//! attacker's bandwidth share. [`FloodIntensity`] converts between the
//! bandwidth-share view and the "how many forged copies accompany each
//! authentic packet" view the simulator needs.

/// An attacker consuming a fraction of the broadcast channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodIntensity {
    /// Fraction of relevant bandwidth spent on forged packets (`x_a = p`).
    fraction: f64,
}

impl FloodIntensity {
    /// No attack (`p = 0`).
    #[must_use]
    pub fn none() -> Self {
        Self { fraction: 0.0 }
    }

    /// An attacker holding a `fraction ∈ [0, 1)` share of the channel.
    ///
    /// `1.0` is excluded: a channel carrying *only* forged packets has no
    /// authentic traffic to authenticate, so the protocols are undefined
    /// there (the paper sweeps `p` up to 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is NaN or outside `[0, 1)`.
    #[must_use]
    pub fn of_bandwidth(fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "attacker bandwidth fraction must be in [0,1), got {fraction}"
        );
        Self { fraction }
    }

    /// The forged-packet fraction `p` (= the bandwidth share `x_a`).
    #[must_use]
    pub fn forged_fraction(&self) -> f64 {
        self.fraction
    }

    /// How many forged copies the attacker injects for every
    /// `authentic_copies` legitimate packets so that forged traffic is a
    /// `p` fraction of the total: `forged / (forged + authentic) = p`.
    ///
    /// Rounds to the nearest whole packet.
    #[must_use]
    pub fn forged_copies(&self, authentic_copies: u64) -> u64 {
        if self.fraction <= 0.0 {
            return 0;
        }
        let a = authentic_copies as f64;
        (a * self.fraction / (1.0 - self.fraction)).round() as u64
    }

    /// The total number of copies (authentic + forged) a receiver sees
    /// per authentic batch.
    #[must_use]
    pub fn total_copies(&self, authentic_copies: u64) -> u64 {
        authentic_copies + self.forged_copies(authentic_copies)
    }
}

impl Default for FloodIntensity {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        assert_eq!(FloodIntensity::none().forged_copies(10), 0);
        assert_eq!(FloodIntensity::default().total_copies(10), 10);
    }

    #[test]
    fn half_bandwidth_doubles_traffic() {
        let f = FloodIntensity::of_bandwidth(0.5);
        assert_eq!(f.forged_copies(10), 10);
        assert_eq!(f.total_copies(10), 20);
    }

    #[test]
    fn p08_gives_four_to_one() {
        // p = 0.8 → forged : authentic = 4 : 1, the paper's Fig. 6 setting.
        let f = FloodIntensity::of_bandwidth(0.8);
        assert_eq!(f.forged_copies(5), 20);
        let total = f.total_copies(5) as f64;
        let realized = f.forged_copies(5) as f64 / total;
        assert!((realized - 0.8).abs() < 1e-9);
    }

    #[test]
    fn realized_fraction_tracks_request() {
        for p in [0.1, 0.3, 0.5, 0.7, 0.9, 0.94, 0.99] {
            let f = FloodIntensity::of_bandwidth(p);
            let forged = f.forged_copies(1000) as f64;
            let realized = forged / (forged + 1000.0);
            assert!((realized - p).abs() < 5e-3, "p={p} realized={realized}");
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth fraction")]
    fn full_bandwidth_rejected() {
        let _ = FloodIntensity::of_bandwidth(1.0);
    }

    #[test]
    fn forged_fraction_roundtrips() {
        assert!((FloodIntensity::of_bandwidth(0.42).forged_fraction() - 0.42).abs() < 1e-12);
    }
}
