//! Named event counters shared by the simulator and protocol nodes.
//!
//! Protocols increment counters like `"auth.strong.ok"` or
//! `"buffer.evicted"`; experiments read them back after a run. Keys are
//! `&'static str` so counting is allocation-free on the hot path.

use std::collections::BTreeMap;

/// A set of monotonically increasing named counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// An empty metric set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to `name`.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of `name` (0 if never touched).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Ratio `get(num) / get(den)`, or `None` when the denominator is 0.
    #[must_use]
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.get(den);
        if d == 0 {
            None
        } else {
            Some(self.get(num) as f64 / d as f64)
        }
    }

    /// Iterates counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another metric set into this one (summing counters).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// A deterministic text snapshot: one `name value` line per counter
    /// in key order (`"(no metrics)"` when empty). Two metric sets are
    /// equal iff their snapshots are byte-identical, so dumping this is
    /// both the human-readable report (`dapd`) and the determinism
    /// fingerprint the chaos tests and the ci.sh soak gate diff.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.counters.is_empty() {
            return f.write_str("(no metrics)");
        }
        for (k, v) in &self.counters {
            writeln!(f, "{k:<40} {v}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Metrics {
    type Item = (&'static str, u64);
    type IntoIter = std::iter::Map<
        std::collections::btree_map::Iter<'a, &'static str, u64>,
        fn((&'a &'static str, &'a u64)) -> (&'static str, u64),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_add_get() {
        let mut m = Metrics::new();
        m.incr("a");
        m.add("a", 4);
        assert_eq!(m.get("a"), 5);
        assert_eq!(m.get("missing"), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut m = Metrics::new();
        m.add("ok", 3);
        assert_eq!(m.ratio("ok", "total"), None);
        m.add("total", 6);
        assert_eq!(m.ratio("ok", "total"), Some(0.5));
    }

    #[test]
    fn merge_sums() {
        let mut a = Metrics::new();
        a.add("x", 1);
        let mut b = Metrics::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn iteration_is_ordered() {
        let mut m = Metrics::new();
        m.incr("b");
        m.incr("a");
        let keys: Vec<_> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
        let keys2: Vec<_> = (&m).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, keys2);
    }

    #[test]
    fn display_nonempty() {
        let mut m = Metrics::new();
        assert_eq!(m.to_string(), "(no metrics)");
        m.incr("hello");
        assert!(m.to_string().contains("hello"));
    }

    #[test]
    fn render_is_sorted_and_fingerprints_equality() {
        let mut a = Metrics::new();
        a.incr("z.last");
        a.add("a.first", 3);
        let rendered = a.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("a.first"));
        assert!(lines[1].starts_with("z.last"));

        let mut b = Metrics::new();
        b.add("a.first", 3);
        b.incr("z.last");
        assert_eq!(a.render(), b.render());
        b.incr("z.last");
        assert_ne!(a.render(), b.render());
        assert_eq!(Metrics::new().render(), "(no metrics)");
    }
}
