//! Named event counters shared by the simulator and protocol nodes,
//! and the [`Registry`] that aggregates them with distributions.
//!
//! Protocols increment counters like `"auth.strong.ok"` or
//! `"buffer.evicted"`; experiments read them back after a run. Keys are
//! `&'static str` so counting is allocation-free on the hot path — and
//! the well-known ones live as constants in [`keys`], so a typo'd
//! counter name is a compile error instead of a silently empty metric.
//!
//! [`Metrics`] stays the plain counter bag the sim protocols use;
//! [`Registry`] extends it with [`Histogram`]s and [`Gauge`]s (from
//! `dap-obs`) behind one sorted, byte-stable snapshot — the shape the
//! sharded pool merges per shard and `dapd` exposes over
//! `--telemetry`.

use std::collections::BTreeMap;

use dap_obs::{Gauge, Histogram};

/// A set of monotonically increasing named counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// An empty metric set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to `name`.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of `name` (0 if never touched).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Ratio `get(num) / get(den)`, or `None` when the denominator is 0.
    #[must_use]
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.get(den);
        if d == 0 {
            None
        } else {
            Some(self.get(num) as f64 / d as f64)
        }
    }

    /// Iterates counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another metric set into this one (summing counters).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// A deterministic text snapshot: one `name value` line per counter
    /// in key order (`"(no metrics)"` when empty). Two metric sets are
    /// equal iff their snapshots are byte-identical, so dumping this is
    /// both the human-readable report (`dapd`) and the determinism
    /// fingerprint the chaos tests and the ci.sh soak gate diff.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.counters.is_empty() {
            return f.write_str("(no metrics)");
        }
        // Pad to the longest key actually present (a hardcoded width
        // used to let >40-char keys run into their values). Keys are
        // ASCII, so byte length is display width.
        let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, v) in &self.counters {
            writeln!(f, "{k:<width$} {v}")?;
        }
        Ok(())
    }
}

/// Counters plus distributions behind one snapshot: the observability
/// plane's aggregation unit. Each pool shard owns one; shutdown merges
/// them (summing counters, folding histogram buckets, combining
/// gauges), and [`Registry::render`] produces the sorted byte-stable
/// text the ci.sh telemetry gate diffs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: Metrics,
    histograms: BTreeMap<&'static str, Histogram>,
    gauges: BTreeMap<&'static str, Gauge>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter bag.
    #[must_use]
    pub fn counters(&self) -> &Metrics {
        &self.counters
    }

    /// Mutable access to the counter bag.
    pub fn counters_mut(&mut self) -> &mut Metrics {
        &mut self.counters
    }

    /// Consumes the registry, keeping only the counters (the legacy
    /// [`Metrics`]-shaped reports use this).
    #[must_use]
    pub fn into_counters(self) -> Metrics {
        self.counters
    }

    /// Adds 1 to counter `name`.
    pub fn incr(&mut self, name: &'static str) {
        self.counters.incr(name);
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        self.counters.add(name, n);
    }

    /// The histogram `name`, created empty on first touch.
    pub fn histogram(&mut self, name: &'static str) -> &mut Histogram {
        self.histograms.entry(name).or_default()
    }

    /// Records one sample into histogram `name`.
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.histogram(name).record(v);
    }

    /// The histogram `name`, if anything was ever recorded under it.
    #[must_use]
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The gauge `name`, created unset on first touch.
    pub fn gauge(&mut self, name: &'static str) -> &mut Gauge {
        self.gauges.entry(name).or_default()
    }

    /// The gauge `name`, if it was ever touched.
    #[must_use]
    pub fn get_gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Whether nothing has been recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().next().is_none()
            && self.histograms.is_empty()
            && self.gauges.is_empty()
    }

    /// Merges another registry into this one: counters sum, histogram
    /// buckets fold, gauges combine ([`Gauge::merge`]). Merging is
    /// order-independent, so a shard merge fingerprints identically no
    /// matter which worker finished first.
    pub fn merge(&mut self, other: &Registry) {
        self.counters.merge(&other.counters);
        for (name, hist) in &other.histograms {
            self.histograms.entry(name).or_default().merge(hist);
        }
        for (name, gauge) in &other.gauges {
            self.gauges.entry(name).or_default().merge(gauge);
        }
    }

    /// Merges a plain counter bag into the registry's counters.
    pub fn merge_metrics(&mut self, metrics: &Metrics) {
        self.counters.merge(metrics);
    }

    /// One sorted snapshot of everything: counters as `name value`,
    /// histograms and gauges as `name` plus their own byte-stable
    /// one-line renders, padded to the longest name. Two registries are
    /// equal iff their snapshots are byte-identical.
    #[must_use]
    pub fn render(&self) -> String {
        let mut lines: BTreeMap<&'static str, String> = BTreeMap::new();
        for (name, value) in self.counters.iter() {
            lines.insert(name, value.to_string());
        }
        for (name, hist) in &self.histograms {
            lines.insert(name, hist.render());
        }
        for (name, gauge) in &self.gauges {
            lines.insert(name, gauge.render());
        }
        if lines.is_empty() {
            return "(no metrics)".to_string();
        }
        let width = lines.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, text) in &lines {
            out.push_str(&format!("{name:<width$} {text}\n"));
        }
        out
    }

    /// The snapshot in Prometheus text exposition format (0.0.4):
    /// counters and gauges as their own metric families, histograms as
    /// summaries with `quantile` labels plus `_sum`/`_count`. Dots in
    /// key names become underscores.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        fn prom(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in self.counters.iter() {
            let n = prom(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, gauge) in &self.gauges {
            let n = prom(name);
            out.push_str(&format!("# TYPE {n} gauge\n"));
            out.push_str(&format!("{n} {}\n", gauge.last().unwrap_or(0)));
        }
        for (name, hist) in &self.histograms {
            let n = prom(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (label, p) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                if let Some(q) = hist.quantile(p) {
                    out.push_str(&format!("{n}{{quantile=\"{label}\"}} {q}\n"));
                }
            }
            out.push_str(&format!("{n}_sum {}\n", hist.sum()));
            out.push_str(&format!("{n}_count {}\n", hist.count()));
        }
        out
    }
}

impl<'a> IntoIterator for &'a Metrics {
    type Item = (&'static str, u64);
    type IntoIter = std::iter::Map<
        std::collections::btree_map::Iter<'a, &'static str, u64>,
        fn((&'a &'static str, &'a u64)) -> (&'static str, u64),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }
}

pub mod keys {
    //! The workspace's well-known metric keys as constants.
    //!
    //! Counting against a `&'static str` is allocation-free but invites
    //! typos that produce silently empty metrics; these constants make
    //! the key set a reviewed, deduplicated surface (see the
    //! `all_keys_are_unique` test) shared by `simnet`, `tesla` and
    //! `net`. Protocol-sim keys (`dap.*`, the `dap-core` adapter) stay
    //! literal where their crate cannot see this module without a
    //! cycle, but every key listed here is the canonical spelling.

    /// Frames broadcast into the simulated channel.
    pub const NET_FRAMES_BROADCAST: &str = "net.frames_broadcast";
    /// Frames unicast in the simulated channel.
    pub const NET_FRAMES_UNICAST: &str = "net.frames_unicast";
    /// Bits offered to the simulated channel.
    pub const NET_BITS_SENT: &str = "net.bits_sent";
    /// Frames the channel model dropped.
    pub const NET_FRAMES_LOST: &str = "net.frames_lost";
    /// Frames delivered to receivers.
    pub const NET_FRAMES_DELIVERED: &str = "net.frames_delivered";
    /// Bits delivered to receivers.
    pub const NET_BITS_DELIVERED: &str = "net.bits_delivered";

    /// Deliveries suppressed by a blackout window.
    pub const FAULT_BLACKOUT_DROPPED: &str = "fault.blackout_dropped";
    /// Frames corrupted by fault injection.
    pub const FAULT_CORRUPTED: &str = "fault.corrupted";
    /// Corrupted frames the corruptor chose to drop.
    pub const FAULT_CORRUPT_DROPPED: &str = "fault.corrupt_dropped";
    /// Frames duplicated by fault injection.
    pub const FAULT_DUPLICATED: &str = "fault.duplicated";
    /// Frames delayed by a reorder spike.
    pub const FAULT_REORDERED: &str = "fault.reordered";
    /// Sends silenced because the source node was crashed.
    pub const FAULT_CRASH_SILENCED: &str = "fault.crash_silenced";
    /// Deliveries dropped because the destination node was crashed.
    pub const FAULT_CRASH_DROPPED: &str = "fault.crash_dropped";
    /// Clock-drift shifts applied.
    pub const FAULT_DRIFT_SHIFTS: &str = "fault.drift_shifts";

    /// TESLA sender: data packets emitted.
    pub const TESLA_SENDER_PACKETS: &str = "tesla.sender.packets";
    /// TESLA sender: intervals skipped on an exhausted chain.
    pub const TESLA_SENDER_EXHAUSTED: &str = "tesla.sender.exhausted";
    /// TESLA receiver: packets authenticated.
    pub const TESLA_RX_AUTHENTICATED: &str = "tesla.rx.authenticated";
    /// TESLA receiver: packets whose MAC failed.
    pub const TESLA_RX_REJECTED_MAC: &str = "tesla.rx.rejected_mac";
    /// TESLA receiver: packets failing the safe-packet test.
    pub const TESLA_RX_UNSAFE: &str = "tesla.rx.unsafe";
    /// TESLA receiver: disclosed keys accepted.
    pub const TESLA_RX_KEY_ACCEPTED: &str = "tesla.rx.key_accepted";
    /// TESLA receiver: disclosed keys rejected.
    pub const TESLA_RX_KEY_REJECTED: &str = "tesla.rx.key_rejected";
    /// TESLA attacker: forged packets emitted.
    pub const TESLA_ATTACKER_FORGED: &str = "tesla.attacker.forged";

    /// μTESLA sender: data packets emitted.
    pub const MUTESLA_SENDER_DATA: &str = "mutesla.sender.data";
    /// μTESLA sender: key disclosures emitted.
    pub const MUTESLA_SENDER_DISCLOSURES: &str = "mutesla.sender.disclosures";
    /// μTESLA sender: intervals skipped on an exhausted chain.
    pub const MUTESLA_SENDER_EXHAUSTED: &str = "mutesla.sender.exhausted";
    /// μTESLA receiver: packets authenticated.
    pub const MUTESLA_RX_AUTHENTICATED: &str = "mutesla.rx.authenticated";
    /// μTESLA receiver: packets whose MAC failed.
    pub const MUTESLA_RX_REJECTED_MAC: &str = "mutesla.rx.rejected_mac";
    /// μTESLA receiver: packets failing the safe-packet test.
    pub const MUTESLA_RX_UNSAFE: &str = "mutesla.rx.unsafe";
    /// μTESLA receiver: disclosed keys accepted.
    pub const MUTESLA_RX_KEY_ACCEPTED: &str = "mutesla.rx.key_accepted";
    /// μTESLA receiver: disclosed keys rejected.
    pub const MUTESLA_RX_KEY_REJECTED: &str = "mutesla.rx.key_rejected";

    /// TESLA++ sender: MAC announcements emitted.
    pub const TESLAPP_SENDER_ANNOUNCES: &str = "teslapp.sender.announces";
    /// TESLA++ sender: reveals emitted.
    pub const TESLAPP_SENDER_REVEALS: &str = "teslapp.sender.reveals";
    /// TESLA++ sender: intervals skipped on an exhausted chain.
    pub const TESLAPP_SENDER_EXHAUSTED: &str = "teslapp.sender.exhausted";
    /// TESLA++ attacker: forged announcements emitted.
    pub const TESLAPP_ATTACKER_FORGED: &str = "teslapp.attacker.forged";
    /// TESLA++ receiver: reveals authenticated.
    pub const TESLAPP_RX_AUTHENTICATED: &str = "teslapp.rx.authenticated";
    /// TESLA++ receiver: disclosed keys rejected.
    pub const TESLAPP_RX_KEY_REJECTED: &str = "teslapp.rx.key_rejected";
    /// TESLA++ receiver: reveals with no matching announcement.
    pub const TESLAPP_RX_NO_MATCH: &str = "teslapp.rx.no_match";
    /// TESLA++ receiver: announcements failing the safe-packet test.
    pub const TESLAPP_RX_UNSAFE: &str = "teslapp.rx.unsafe";
    /// TESLA++ receiver: announcements buffered awaiting a key.
    pub const TESLAPP_RX_STORED: &str = "teslapp.rx.stored";

    /// Multi-level μTESLA sender: CDM packets emitted.
    pub const ML_SENDER_CDM: &str = "ml.sender.cdm";
    /// Multi-level μTESLA sender: data packets emitted.
    pub const ML_SENDER_DATA: &str = "ml.sender.data";
    /// Multi-level μTESLA sender: low-level disclosures emitted.
    pub const ML_SENDER_DISCLOSURE: &str = "ml.sender.disclosure";
    /// Multi-level μTESLA sender: intervals skipped on exhaustion.
    pub const ML_SENDER_EXHAUSTED: &str = "ml.sender.exhausted";
    /// Multi-level μTESLA attacker: forged CDMs emitted.
    pub const ML_ATTACKER_FORGED_CDM: &str = "ml.attacker.forged_cdm";
    /// Multi-level μTESLA receiver: CDMs failing the safe-packet test.
    pub const ML_RX_CDM_UNSAFE: &str = "ml.rx.cdm_unsafe";
    /// Multi-level μTESLA receiver: high-level keys accepted.
    pub const ML_RX_HIGH_KEY_ACCEPTED: &str = "ml.rx.high_key_accepted";
    /// Multi-level μTESLA receiver: high-level keys rejected.
    pub const ML_RX_HIGH_KEY_REJECTED: &str = "ml.rx.high_key_rejected";
    /// Multi-level μTESLA receiver: CDMs authenticated.
    pub const ML_RX_CDM_AUTHENTICATED: &str = "ml.rx.cdm_authenticated";
    /// Multi-level μTESLA receiver: low-level commitments installed.
    pub const ML_RX_COMMITMENT_INSTALLED: &str = "ml.rx.commitment_installed";
    /// Multi-level μTESLA receiver: low-level packets authenticated.
    pub const ML_RX_LOW_AUTHENTICATED: &str = "ml.rx.low_authenticated";
    /// Multi-level μTESLA receiver: low-level packets rejected.
    pub const ML_RX_LOW_REJECTED: &str = "ml.rx.low_rejected";
    /// Multi-level μTESLA receiver: low-level packets failing the
    /// safe-packet test.
    pub const ML_RX_LOW_UNSAFE: &str = "ml.rx.low_unsafe";

    /// Wire pool: announces stored into a reservoir.
    pub const NET_ANNOUNCE_STORED: &str = "net.announce.stored";
    /// Wire pool: announces sampled out by the reservoir.
    pub const NET_ANNOUNCE_SAMPLED_OUT: &str = "net.announce.sampled_out";
    /// Wire pool: announces failing the safe-packet test.
    pub const NET_ANNOUNCE_UNSAFE: &str = "net.announce.unsafe";
    /// Wire pool: reveals received.
    pub const NET_REVEAL_TOTAL: &str = "net.reveal.total";
    /// Wire pool: reveals fully authenticated.
    pub const NET_REVEAL_AUTH: &str = "net.reveal.auth";
    /// Wire pool: reveals whose key failed weak authentication.
    pub const NET_REVEAL_WEAK_REJECTED: &str = "net.reveal.weak_rejected";
    /// Wire pool: reveals whose μMAC check failed (evicted evidence).
    pub const NET_REVEAL_STRONG_REJECTED: &str = "net.reveal.strong_rejected";
    /// Wire pool: reveals with no surviving candidate μMAC.
    pub const NET_REVEAL_NO_CANDIDATE: &str = "net.reveal.no_candidate";
    /// Wire pool (TESLA++): reveals with no matching announcement.
    pub const NET_REVEAL_NO_MATCH: &str = "net.reveal.no_match";
    /// Wire pool: datagrams accepted into shard queues.
    pub const NET_INGRESS_FRAMES: &str = "net.ingress.frames";
    /// Wire pool: bytes accepted into shard queues.
    pub const NET_INGRESS_BYTES: &str = "net.ingress.bytes";
    /// Wire pool: datagrams shed before a shard queue (all reasons).
    pub const NET_INGRESS_DROPPED: &str = "net.ingress.dropped";
    /// Wire pool drop reason: shard queue full (DropCount posture).
    pub const NET_DROP_QUEUE_FULL: &str = "net.drop.queue_full";
    /// Queue-full drops whose claimed sender is operator-pinned.
    pub const NET_DROP_QUEUE_FULL_PINNED: &str = "net.drop.queue_full.pinned";
    /// Queue-full drops whose claimed sender is not pinned.
    pub const NET_DROP_QUEUE_FULL_UNPINNED: &str = "net.drop.queue_full.unpinned";
    /// Wire pool drop reason: pool already shutting down.
    pub const NET_DROP_CLOSED: &str = "net.drop.closed";
    /// Closed-pool drops whose claimed sender is operator-pinned.
    pub const NET_DROP_CLOSED_PINNED: &str = "net.drop.closed.pinned";
    /// Closed-pool drops whose claimed sender is not pinned.
    pub const NET_DROP_CLOSED_UNPINNED: &str = "net.drop.closed.unpinned";
    /// Priority drain: frames shed at a window flush (all classes).
    pub const NET_SHED_TOTAL: &str = "net.shed.total";
    /// Priority drain: shed frames claiming a pinned sender.
    pub const NET_SHED_PINNED: &str = "net.shed.pinned";
    /// Priority drain: shed frames claiming a high-priority sender.
    pub const NET_SHED_HIGH: &str = "net.shed.high";
    /// Priority drain: shed frames claiming a low-priority sender.
    pub const NET_SHED_LOW: &str = "net.shed.low";
    /// Wire pool: datagrams with undecodable bytes.
    pub const NET_DECODE_ERRORS: &str = "net.decode.errors";
    /// Wire pool: bytes skipped while resynchronising.
    pub const NET_DECODE_RESYNC_BYTES: &str = "net.decode.resync_bytes";
    /// Wire pool: per-frame verify latency (histogram, ns).
    pub const NET_VERIFY_LATENCY_NS: &str = "net.verify.latency_ns";
    /// Wire pool: per-datagram codec decode latency (histogram, ns).
    pub const NET_DECODE_LATENCY_NS: &str = "net.decode.latency_ns";
    /// Wire pool: shard queue occupancy at pop (histogram, frames;
    /// recorded only under wall-clock time — see DESIGN §9).
    pub const NET_QUEUE_DEPTH: &str = "net.queue.depth";
    /// Wire pool: shard queue occupancy gauge (wall-clock runs only).
    pub const NET_QUEUE_OCCUPANCY: &str = "net.queue.occupancy";
    /// Session table: senders admitted (first frame seen).
    pub const NET_SESSION_ADMITTED: &str = "net.session.admitted";
    /// Session table: sessions evicted by the LRU/budget policy.
    pub const NET_SESSION_EVICTED: &str = "net.session.evicted";
    /// Session table: previously evicted senders re-admitted.
    pub const NET_SESSION_READMITTED: &str = "net.session.readmitted";
    /// Session table: frames from senders absent from the directory.
    pub const NET_SESSION_UNKNOWN: &str = "net.session.unknown";
    /// Session table: resident-session occupancy gauge (per shard,
    /// merged to a cross-shard min/max envelope).
    pub const NET_SESSION_OCCUPANCY: &str = "net.session.occupancy";
    /// Session table: resident-session memory gauge (bits).
    pub const NET_SESSION_MEMORY_BITS: &str = "net.session.memory_bits";
    /// Fleet: per-sender authenticated-reveal rate envelope (permille).
    pub const NET_FLEET_AUTH_RATE_PERMILLE: &str = "net.fleet.auth_rate_permille";
    /// Fleet: auth-rate envelope restricted to pinned senders.
    pub const NET_FLEET_PINNED_AUTH_PERMILLE: &str = "net.fleet.pinned_auth_permille";
    /// Fleet: auth-rate envelope restricted to unpinned senders.
    pub const NET_FLEET_UNPINNED_AUTH_PERMILLE: &str = "net.fleet.unpinned_auth_permille";
    /// Control plane: forged-fraction estimate samples folded into p̂.
    pub const CONTROL_SAMPLES: &str = "control.samples";
    /// Control plane: final smoothed forged-fraction estimate (permille).
    pub const CONTROL_P_PERMILLE: &str = "control.p_permille";
    /// Control plane: online game solves run (hysteresis-gated).
    pub const CONTROL_SOLVES: &str = "control.solves";
    /// Control plane: posture directives issued (m or give-up changed).
    pub const CONTROL_DIRECTIVES: &str = "control.directives";
    /// Control plane: final reservoir count the directives converged on.
    pub const CONTROL_M: &str = "control.m";
    /// Control plane: 1 when the §V give-up switch ended the run on.
    pub const CONTROL_GIVE_UP: &str = "control.give_up";
    /// Control plane: live smoothed forged-fraction estimate gauge (ppm).
    pub const CONTROL_GAUGE_P_HAT_PPM: &str = "control.gauge.p_hat_ppm";
    /// Control plane: live posture-epoch gauge.
    pub const CONTROL_GAUGE_EPOCH: &str = "control.gauge.epoch";
    /// Control plane: live reservoir-count gauge (buffers per interval).
    pub const CONTROL_GAUGE_M: &str = "control.gauge.m";
    /// Flight recorder: reader-side ingress routing+copy (histogram, ns).
    pub const NET_STAGE_INGRESS_NS: &str = "net.stage.ingress_ns";
    /// Flight recorder: enqueue → worker-pop wait (histogram, ns).
    pub const NET_STAGE_QUEUE_WAIT_NS: &str = "net.stage.queue_wait_ns";
    /// Flight recorder: datagram decode (histogram, ns).
    pub const NET_STAGE_DECODE_NS: &str = "net.stage.decode_ns";
    /// Flight recorder: per-frame batch-prefetch share (histogram, ns).
    pub const NET_STAGE_PREFETCH_NS: &str = "net.stage.prefetch_ns";
    /// Flight recorder: announce-path verify (histogram, ns).
    pub const NET_STAGE_VERIFY_NS: &str = "net.stage.verify_ns";
    /// Flight recorder: reservoir-decision bookkeeping (histogram, ns).
    pub const NET_STAGE_BUFFER_NS: &str = "net.stage.buffer_ns";
    /// Flight recorder: reveal-authenticate path (histogram, ns).
    pub const NET_STAGE_REVEAL_AUTH_NS: &str = "net.stage.reveal_auth_ns";
    /// Wire medium: frames sent.
    pub const NET_WIRE_SENT: &str = "net.wire.sent";
    /// Wire medium: frames lost.
    pub const NET_WIRE_LOST: &str = "net.wire.lost";
    /// Wire medium: frames corrupted.
    pub const NET_WIRE_CORRUPTED: &str = "net.wire.corrupted";

    /// Every key above, for registry checks (`all_keys_are_unique`).
    pub const ALL: &[&str] = &[
        NET_FRAMES_BROADCAST,
        NET_FRAMES_UNICAST,
        NET_BITS_SENT,
        NET_FRAMES_LOST,
        NET_FRAMES_DELIVERED,
        NET_BITS_DELIVERED,
        FAULT_BLACKOUT_DROPPED,
        FAULT_CORRUPTED,
        FAULT_CORRUPT_DROPPED,
        FAULT_DUPLICATED,
        FAULT_REORDERED,
        FAULT_CRASH_SILENCED,
        FAULT_CRASH_DROPPED,
        FAULT_DRIFT_SHIFTS,
        TESLA_SENDER_PACKETS,
        TESLA_SENDER_EXHAUSTED,
        TESLA_RX_AUTHENTICATED,
        TESLA_RX_REJECTED_MAC,
        TESLA_RX_UNSAFE,
        TESLA_RX_KEY_ACCEPTED,
        TESLA_RX_KEY_REJECTED,
        TESLA_ATTACKER_FORGED,
        MUTESLA_SENDER_DATA,
        MUTESLA_SENDER_DISCLOSURES,
        MUTESLA_SENDER_EXHAUSTED,
        MUTESLA_RX_AUTHENTICATED,
        MUTESLA_RX_REJECTED_MAC,
        MUTESLA_RX_UNSAFE,
        MUTESLA_RX_KEY_ACCEPTED,
        MUTESLA_RX_KEY_REJECTED,
        TESLAPP_SENDER_ANNOUNCES,
        TESLAPP_SENDER_REVEALS,
        TESLAPP_SENDER_EXHAUSTED,
        TESLAPP_ATTACKER_FORGED,
        TESLAPP_RX_AUTHENTICATED,
        TESLAPP_RX_KEY_REJECTED,
        TESLAPP_RX_NO_MATCH,
        TESLAPP_RX_UNSAFE,
        TESLAPP_RX_STORED,
        ML_SENDER_CDM,
        ML_SENDER_DATA,
        ML_SENDER_DISCLOSURE,
        ML_SENDER_EXHAUSTED,
        ML_ATTACKER_FORGED_CDM,
        ML_RX_CDM_UNSAFE,
        ML_RX_HIGH_KEY_ACCEPTED,
        ML_RX_HIGH_KEY_REJECTED,
        ML_RX_CDM_AUTHENTICATED,
        ML_RX_COMMITMENT_INSTALLED,
        ML_RX_LOW_AUTHENTICATED,
        ML_RX_LOW_REJECTED,
        ML_RX_LOW_UNSAFE,
        NET_ANNOUNCE_STORED,
        NET_ANNOUNCE_SAMPLED_OUT,
        NET_ANNOUNCE_UNSAFE,
        NET_REVEAL_TOTAL,
        NET_REVEAL_AUTH,
        NET_REVEAL_WEAK_REJECTED,
        NET_REVEAL_STRONG_REJECTED,
        NET_REVEAL_NO_CANDIDATE,
        NET_REVEAL_NO_MATCH,
        NET_INGRESS_FRAMES,
        NET_INGRESS_BYTES,
        NET_INGRESS_DROPPED,
        NET_DROP_QUEUE_FULL,
        NET_DROP_QUEUE_FULL_PINNED,
        NET_DROP_QUEUE_FULL_UNPINNED,
        NET_DROP_CLOSED,
        NET_DROP_CLOSED_PINNED,
        NET_DROP_CLOSED_UNPINNED,
        NET_SHED_TOTAL,
        NET_SHED_PINNED,
        NET_SHED_HIGH,
        NET_SHED_LOW,
        NET_DECODE_ERRORS,
        NET_DECODE_RESYNC_BYTES,
        NET_VERIFY_LATENCY_NS,
        NET_DECODE_LATENCY_NS,
        NET_QUEUE_DEPTH,
        NET_QUEUE_OCCUPANCY,
        NET_SESSION_ADMITTED,
        NET_SESSION_EVICTED,
        NET_SESSION_READMITTED,
        NET_SESSION_UNKNOWN,
        NET_SESSION_OCCUPANCY,
        NET_SESSION_MEMORY_BITS,
        NET_FLEET_AUTH_RATE_PERMILLE,
        NET_FLEET_PINNED_AUTH_PERMILLE,
        NET_FLEET_UNPINNED_AUTH_PERMILLE,
        CONTROL_SAMPLES,
        CONTROL_P_PERMILLE,
        CONTROL_SOLVES,
        CONTROL_DIRECTIVES,
        CONTROL_M,
        CONTROL_GIVE_UP,
        CONTROL_GAUGE_P_HAT_PPM,
        CONTROL_GAUGE_EPOCH,
        CONTROL_GAUGE_M,
        NET_STAGE_INGRESS_NS,
        NET_STAGE_QUEUE_WAIT_NS,
        NET_STAGE_DECODE_NS,
        NET_STAGE_PREFETCH_NS,
        NET_STAGE_VERIFY_NS,
        NET_STAGE_BUFFER_NS,
        NET_STAGE_REVEAL_AUTH_NS,
        NET_WIRE_SENT,
        NET_WIRE_LOST,
        NET_WIRE_CORRUPTED,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_add_get() {
        let mut m = Metrics::new();
        m.incr("a");
        m.add("a", 4);
        assert_eq!(m.get("a"), 5);
        assert_eq!(m.get("missing"), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut m = Metrics::new();
        m.add("ok", 3);
        assert_eq!(m.ratio("ok", "total"), None);
        m.add("total", 6);
        assert_eq!(m.ratio("ok", "total"), Some(0.5));
    }

    #[test]
    fn merge_sums() {
        let mut a = Metrics::new();
        a.add("x", 1);
        let mut b = Metrics::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn iteration_is_ordered() {
        let mut m = Metrics::new();
        m.incr("b");
        m.incr("a");
        let keys: Vec<_> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
        let keys2: Vec<_> = (&m).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, keys2);
    }

    #[test]
    fn display_nonempty() {
        let mut m = Metrics::new();
        assert_eq!(m.to_string(), "(no metrics)");
        m.incr("hello");
        assert!(m.to_string().contains("hello"));
    }

    #[test]
    fn render_is_sorted_and_fingerprints_equality() {
        let mut a = Metrics::new();
        a.incr("z.last");
        a.add("a.first", 3);
        let rendered = a.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("a.first"));
        assert!(lines[1].starts_with("z.last"));

        let mut b = Metrics::new();
        b.add("a.first", 3);
        b.incr("z.last");
        assert_eq!(a.render(), b.render());
        b.incr("z.last");
        assert_ne!(a.render(), b.render());
        assert_eq!(Metrics::new().render(), "(no metrics)");
    }

    #[test]
    fn render_pads_to_the_longest_key() {
        let mut m = Metrics::new();
        m.incr("short");
        m.incr("a.key.much.longer.than.forty.characters.used.to.collide");
        let rendered = m.render();
        let lines: Vec<&str> = rendered.lines().collect();
        // Both values start in the same column: one space after the
        // longest key.
        let long = "a.key.much.longer.than.forty.characters.used.to.collide";
        assert_eq!(lines[0], format!("{long} 1"));
        assert_eq!(
            lines[1],
            format!("{:<width$} 1", "short", width = long.len())
        );
    }

    #[test]
    fn registry_aggregates_all_three_kinds() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.render(), "(no metrics)");
        r.incr(keys::NET_INGRESS_FRAMES);
        r.add(keys::NET_INGRESS_BYTES, 128);
        r.record(keys::NET_VERIFY_LATENCY_NS, 500);
        r.record(keys::NET_VERIFY_LATENCY_NS, 700);
        r.gauge(keys::NET_QUEUE_OCCUPANCY).set(3);
        assert!(!r.is_empty());
        assert_eq!(r.counters().get(keys::NET_INGRESS_BYTES), 128);
        assert_eq!(
            r.get_histogram(keys::NET_VERIFY_LATENCY_NS)
                .unwrap()
                .count(),
            2
        );
        assert_eq!(
            r.get_gauge(keys::NET_QUEUE_OCCUPANCY).unwrap().last(),
            Some(3)
        );
        let rendered = r.render();
        assert!(rendered.contains("net.ingress.frames"));
        assert!(rendered.contains("count=2"));
        assert!(rendered.contains("last=3"));
        // Sorted by name.
        let names: Vec<&str> = rendered
            .lines()
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let build = |shards: &[u64]| {
            let mut r = Registry::new();
            for &s in shards {
                let mut shard = Registry::new();
                shard.add(keys::NET_INGRESS_FRAMES, s);
                shard.record(keys::NET_VERIFY_LATENCY_NS, s * 100);
                shard.gauge(keys::NET_QUEUE_OCCUPANCY).set(s);
                r.merge(&shard);
            }
            r
        };
        let forward = build(&[1, 2, 3]);
        let backward = build(&[3, 2, 1]);
        assert_eq!(forward.render(), backward.render());
        assert_eq!(forward.counters().get(keys::NET_INGRESS_FRAMES), 6);
    }

    #[test]
    fn registry_prometheus_exposition_covers_every_kind() {
        let mut r = Registry::new();
        r.incr(keys::NET_REVEAL_AUTH);
        r.record(keys::NET_VERIFY_LATENCY_NS, 1000);
        r.gauge(keys::NET_QUEUE_OCCUPANCY).set(5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE net_reveal_auth counter"));
        assert!(text.contains("net_reveal_auth 1"));
        assert!(text.contains("# TYPE net_queue_occupancy gauge"));
        assert!(text.contains("net_queue_occupancy 5"));
        assert!(text.contains("# TYPE net_verify_latency_ns summary"));
        assert!(text.contains("net_verify_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("net_verify_latency_ns_count 1"));
    }

    #[test]
    fn all_keys_are_unique() {
        // The registry check the keys module promises: no duplicate or
        // conflicting spellings across the workspace's key constants.
        let mut seen = std::collections::BTreeSet::new();
        for key in keys::ALL {
            assert!(seen.insert(*key), "duplicate metric key {key}");
            assert!(
                key.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "non-canonical key spelling {key}"
            );
        }
        assert_eq!(seen.len(), keys::ALL.len());
    }
}
