//! Deterministic randomness for reproducible simulations.
//!
//! Every stochastic decision in the simulator (packet loss, jitter,
//! reservoir sampling inside protocol nodes) draws from a [`SimRng`]
//! seeded once per experiment, so a run is a pure function of its seed
//! and configuration.
//!
//! The generator is an in-tree **xoshiro256++** (Blackman & Vigna 2019)
//! whose 256-bit state is expanded from the 64-bit experiment seed with
//! SplitMix64, exactly as the xoshiro authors recommend. No external
//! crates are involved — the byte stream for a given seed is fixed by
//! this file alone, which is what makes the golden regression tests in
//! `tests/determinism.rs` meaningful.

use dap_crypto::rng::{splitmix64, FillBytes, SplitMix64, UniformF64};

/// A seedable RNG with support for deriving independent child streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a 64-bit experiment seed.
    ///
    /// The four state words are successive SplitMix64 outputs, so every
    /// seed (including 0) yields a well-mixed, non-degenerate state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { state }
    }

    /// The next 64 bits of the stream (xoshiro256++ core step).
    #[must_use = "discarding a draw still advances the stream"]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// The next 32 bits (upper half of a 64-bit draw).
    #[must_use = "discarding a draw still advances the stream"]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Derives an independent child RNG identified by `stream`.
    ///
    /// Different `stream` values yield streams that do not overlap in
    /// practice (they seed from distinct SplitMix-style mixes), so e.g.
    /// each node can get its own stream without cross-contaminating the
    /// loss process.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id with fresh entropy from the parent so that
        // forking twice with the same id still yields distinct children.
        let base = self.next_u64();
        let mixed = splitmix64(base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        SimRng::new(mixed)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    #[must_use = "discarding a draw still advances the stream"]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's widening-multiply rejection method: unbiased for
    /// every `n`, with at most one extra draw in expectation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use = "discarding a draw still advances the stream"]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            // Rejected draw: retry keeps the distribution exactly uniform.
        }
    }

    /// Uniform float in `[0, 1)` (53 uniform mantissa bits).
    #[must_use = "discarding a draw still advances the stream"]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FillBytes for SimRng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        SimRng::fill_bytes(self, dest);
    }
}

impl UniformF64 for SimRng {
    fn unit_f64(&mut self) -> f64 {
        self.unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ with state expanded from seed 0 by SplitMix64:
        // state = [splitmix(0), splitmix'(…), …]. The first output is
        // rotl(s0 + s3, 23) + s0, pinned here so any accidental change
        // to the generator (or its seeding) fails loudly.
        let rng = SimRng::new(0);
        let s = rng.state;
        let expect = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let mut fresh = SimRng::new(0);
        assert_eq!(fresh.next_u64(), expect);
        // And the state words come from SplitMix64 on counter seeds.
        assert_eq!(s[0], splitmix64(0));
        assert_eq!(s[1], splitmix64(0x9e37_79b9_7f4a_7c15));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(9);
        let mut parent2 = SimRng::new(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent = SimRng::new(9);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn repeated_fork_same_stream_differs() {
        let mut parent = SimRng::new(9);
        let mut a = parent.fork(1);
        let mut b = parent.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_are_statistically_distinct() {
        // Child streams with different ids must look unrelated: compare
        // 64 aligned draws pairwise across 8 children — no collisions,
        // and bitwise correlation stays near 50%.
        let mut parent = SimRng::new(2024);
        let mut children: Vec<SimRng> = (0..8).map(|i| parent.fork(i)).collect();
        let draws: Vec<Vec<u64>> = children
            .iter_mut()
            .map(|c| (0..64).map(|_| c.next_u64()).collect())
            .collect();
        for i in 0..draws.len() {
            for j in (i + 1)..draws.len() {
                let equal = draws[i]
                    .iter()
                    .zip(&draws[j])
                    .filter(|(a, b)| a == b)
                    .count();
                assert_eq!(equal, 0, "streams {i} and {j} collide");
                let matching_bits: u32 = draws[i]
                    .iter()
                    .zip(&draws[j])
                    .map(|(a, b)| (!(a ^ b)).count_ones())
                    .sum();
                // 64 draws × 64 bits = 4096 comparisons; expect ~2048.
                assert!(
                    (1700..2400).contains(&matching_bits),
                    "streams {i},{j}: {matching_bits} matching bits"
                );
            }
        }
    }

    #[test]
    fn fork_reproduces_from_equal_parent_state() {
        // Same parent state + same id ⇒ identical child stream, for
        // several ids and across multiple draws.
        for id in [0u64, 1, 7, u64::MAX] {
            let mut p1 = SimRng::new(77);
            let mut p2 = p1.clone();
            let mut c1 = p1.fork(id);
            let mut c2 = p2.fork(id);
            for _ in 0..32 {
                assert_eq!(c1.next_u64(), c2.next_u64());
            }
            // The fork consumed parent entropy identically too.
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn chance_edges() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut rng = SimRng::new(4);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn below_in_range() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SimRng::new(8);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            counts[rng.below(5) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((1_800..2_200).contains(c), "bucket {i}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let _ = SimRng::new(0).below(0);
    }

    #[test]
    fn unit_in_range() {
        let mut rng = SimRng::new(6);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_deterministic_and_odd_lengths() {
        let mut a = SimRng::new(12);
        let mut b = SimRng::new(12);
        let mut x = [0u8; 11];
        let mut y = [0u8; 11];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
        assert_ne!(x, [0u8; 11]);
    }
}
