//! Deterministic randomness for reproducible simulations.
//!
//! Every stochastic decision in the simulator (packet loss, jitter,
//! reservoir sampling inside protocol nodes) draws from a [`SimRng`]
//! seeded once per experiment, so a run is a pure function of its seed
//! and configuration.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable RNG with support for deriving independent child streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit experiment seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG identified by `stream`.
    ///
    /// Different `stream` values yield streams that do not overlap in
    /// practice (they seed from distinct SplitMix-style mixes), so e.g.
    /// each node can get its own stream without cross-contaminating the
    /// loss process.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id with fresh entropy from the parent so that
        // forking twice with the same id still yields distinct children.
        let base = self.inner.gen::<u64>();
        let mixed = splitmix64(base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        SimRng::new(mixed)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    #[must_use]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(9);
        let mut parent2 = SimRng::new(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent = SimRng::new(9);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn repeated_fork_same_stream_differs() {
        let mut parent = SimRng::new(9);
        let mut a = parent.fork(1);
        let mut b = parent.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_edges() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut rng = SimRng::new(4);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn below_in_range() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let _ = SimRng::new(0).below(0);
    }

    #[test]
    fn unit_in_range() {
        let mut rng = SimRng::new(6);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
