//! Radio energy accounting.
//!
//! The paper motivates DAP with the resource constraints of MCN nodes;
//! in sensor-class hardware the radio dominates the energy budget, so a
//! useful first-order model charges per bit sent and received. The
//! simulator already counts both ([`crate::network::Network`] maintains
//! `net.bits_sent` and `net.bits_delivered`); an [`EnergyModel`] converts
//! them to joules.
//!
//! Computation (MACs, hashes) is orders of magnitude cheaper per packet
//! on this class of hardware and is deliberately excluded — the
//! comparison across protocols is driven by what they put on the air and
//! what receivers must hear.

use crate::metrics::Metrics;

/// Per-bit radio energy costs, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Transmit cost per bit.
    pub tx_nj_per_bit: f64,
    /// Receive cost per bit.
    pub rx_nj_per_bit: f64,
}

impl EnergyModel {
    /// Representative CC2420-class (TelosB mote) radio: ≈ 0.60 μJ/bit to
    /// transmit, ≈ 0.67 μJ/bit to receive at 250 kbps.
    #[must_use]
    pub fn cc2420() -> Self {
        Self {
            tx_nj_per_bit: 600.0,
            rx_nj_per_bit: 670.0,
        }
    }

    /// Total transmit energy for a run, in millijoules.
    #[must_use]
    pub fn tx_mj(&self, metrics: &Metrics) -> f64 {
        metrics.get("net.bits_sent") as f64 * self.tx_nj_per_bit * 1e-6
    }

    /// Total receive energy across all receivers, in millijoules.
    #[must_use]
    pub fn rx_mj(&self, metrics: &Metrics) -> f64 {
        metrics.get("net.bits_delivered") as f64 * self.rx_nj_per_bit * 1e-6
    }

    /// Total radio energy, in millijoules.
    #[must_use]
    pub fn total_mj(&self, metrics: &Metrics) -> f64 {
        self.tx_mj(metrics) + self.rx_mj(metrics)
    }

    /// Energy per unit of useful work, in millijoules — e.g. per
    /// authenticated message. `None` when `work` is zero.
    #[must_use]
    pub fn per_unit_mj(&self, metrics: &Metrics, work: u64) -> Option<f64> {
        if work == 0 {
            None
        } else {
            Some(self.total_mj(metrics) / work as f64)
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::cc2420()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(sent: u64, delivered: u64) -> Metrics {
        let mut m = Metrics::new();
        m.add("net.bits_sent", sent);
        m.add("net.bits_delivered", delivered);
        m
    }

    #[test]
    fn energy_scales_with_bits() {
        let e = EnergyModel::cc2420();
        let m = metrics(1000, 3000);
        assert!((e.tx_mj(&m) - 0.6).abs() < 1e-9);
        assert!((e.rx_mj(&m) - 3.0 * 0.67).abs() < 1e-9);
        assert!((e.total_mj(&m) - (0.6 + 2.01)).abs() < 1e-9);
    }

    #[test]
    fn per_unit_handles_zero_work() {
        let e = EnergyModel::default();
        let m = metrics(100, 100);
        assert_eq!(e.per_unit_mj(&m, 0), None);
        assert!(e.per_unit_mj(&m, 10).unwrap() > 0.0);
    }

    #[test]
    fn empty_metrics_cost_nothing() {
        let e = EnergyModel::cc2420();
        assert_eq!(e.total_mj(&Metrics::new()), 0.0);
    }
}
