//! Algorithm 3 as an **online, allocation-free control-loop step**.
//!
//! [`optimal_buffer_count`](crate::optimize::optimal_buffer_count) is the
//! offline experiment driver: it records the whole cost landscape in a
//! `Vec` and evolves each candidate game through a heap-allocated
//! [`Trajectory`](crate::dynamics::Trajectory). The control plane in
//! `dap-net` re-solves the game at interval boundaries on the hot path,
//! so this module provides the same argmin with two differences:
//!
//! * **no allocation** — the Euler loop keeps only the current state and
//!   candidate snapping walks the five closed forms inline;
//! * **a step bound** — [`ONLINE_MAX_STEPS`] per candidate `m`, so one
//!   control-loop tick has a hard upper cost regardless of how slowly a
//!   spiral converges (the settled state is still snapped/classified).
//!
//! The result also carries the paper's §V *give-up* verdict: when the
//! best achievable posture is `(0, 1)` or `(X′, 1)` the defender cost has
//! saturated at `R_a` — buffers no longer buy anything — and the control
//! plane should stop paying for them.

use crate::cost::defense_cost;
use crate::dynamics::{EulerIntegrator, CONVERGENCE_TOL};
use crate::ess::{classify_coordinates, interior_point, x_prime, y_prime, EssKind, MATCH_TOL};
use crate::payoff::{DosGame, DosGameParams};
use crate::state::PopulationState;

/// Euler-step budget per candidate `m`. The paper's regimes converge in
/// hundreds of steps; the slowest interior spirals take a few thousand.
/// This bound keeps one full solve (`cap` candidates) under ~10⁷ steps
/// worst-case while leaving orders of magnitude of slack for convergence.
pub const ONLINE_MAX_STEPS: usize = 100_000;

/// One solved posture: the argmin buffer count and the ESS it induces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePosture {
    /// The cost-minimising buffer count `m*`.
    pub m: u32,
    /// The ESS shape reached with `m*` buffers.
    pub kind: EssKind,
    /// The settled population state (snapped to the closed form when
    /// within [`MATCH_TOL`]).
    pub point: PopulationState,
    /// The defenders' average cost at that ESS.
    pub cost: f64,
    /// §V give-up verdict: the best posture still leaves attackers fully
    /// attacking with cost pinned at `R_a`, so buffering is pointless.
    pub give_up: bool,
}

/// Evolves `game` from the paper's `(0.5, 0.5)` start for at most
/// `max_steps` Euler steps, returning the settled state without
/// recording a trajectory.
#[must_use]
pub fn settle(game: &DosGame, max_steps: usize) -> PopulationState {
    let integrator = EulerIntegrator::paper();
    let mut current = PopulationState::CENTER;
    for _ in 0..max_steps {
        let next = integrator.step(game, current);
        let moved = next.distance(&current);
        current = next;
        if moved < CONVERGENCE_TOL {
            break;
        }
    }
    current
}

/// Snaps a settled state to the nearest of the five closed-form ESS
/// candidates (mirroring `predict_ess`, but without building the
/// candidate `Vec`), falling back to raw-coordinate classification when
/// nothing is within [`MATCH_TOL`].
#[must_use]
pub fn snap_to_candidate(game: &DosGame, settled: PopulationState) -> (PopulationState, EssKind) {
    let mut best: Option<(f64, PopulationState, EssKind)> = None;
    let mut consider = |x: f64, y: f64, kind: EssKind| {
        if !(0.0..=1.0).contains(&x) || !(0.0..=1.0).contains(&y) {
            return;
        }
        let point = PopulationState::new(x, y);
        let d = settled.distance(&point);
        if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
            best = Some((d, point, kind));
        }
    };

    // Same candidate set and visit order as `ess_candidates`, so ties
    // resolve identically to the offline path.
    consider(0.0, 1.0, EssKind::GiveUpDefense);
    consider(1.0, 1.0, EssKind::FullDefenseFullAttack);
    let xp = x_prime(game);
    if xp < 1.0 {
        consider(xp, 1.0, EssKind::PartialDefenseFullAttack);
    }
    let yp = y_prime(game);
    if yp < 1.0 {
        consider(1.0, yp, EssKind::FullDefensePartialAttack);
    }
    let (xi, yi) = interior_point(game);
    if (0.0..1.0).contains(&xi) && (0.0..1.0).contains(&yi) && xi > 0.0 && yi > 0.0 {
        consider(xi, yi, EssKind::Interior);
    }

    match best {
        Some((d, point, kind)) if d <= MATCH_TOL => (point, kind),
        _ => (settled, classify_coordinates(settled)),
    }
}

/// The online Algorithm 3 step: sweep `m ∈ 1..=cap`, settle each game
/// (step-bounded), and return the cost-argmin posture. Ties break toward
/// the smaller `m`, which also minimises memory.
///
/// # Panics
///
/// Panics if `cap == 0`.
#[must_use]
pub fn solve_posture(params: DosGameParams, cap: u32) -> OnlinePosture {
    assert!(cap >= 1, "buffer cap must be at least 1");
    let mut best: Option<OnlinePosture> = None;
    for m in 1..=cap {
        let mut inst = params;
        inst.m = m;
        let game = inst.into_game();
        let settled = settle(&game, ONLINE_MAX_STEPS);
        let (point, kind) = snap_to_candidate(&game, settled);
        let cost = defense_cost(&game, point);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(OnlinePosture {
                m,
                kind,
                point,
                cost,
                give_up: false,
            });
        }
    }
    let mut posture = best.expect("cap >= 1 so at least one candidate");
    posture.give_up = matches!(
        posture.kind,
        EssKind::GiveUpDefense | EssKind::PartialDefenseFullAttack
    );
    posture
}

/// [`solve_posture`] for a fixed-point attack estimate: `p_permille` is
/// the estimated forged fraction in permille (0..=1000), applied to the
/// paper's economy. This is the entry point the `dap-net` control plane
/// calls — integer in, so two same-seed runs feed bit-identical inputs.
///
/// # Panics
///
/// Panics if `p_permille > 1000` or `cap == 0`.
#[must_use]
pub fn solve_posture_permille(p_permille: u32, cap: u32) -> OnlinePosture {
    assert!(p_permille <= 1000, "permille estimate out of range");
    let p = f64::from(p_permille) / 1000.0;
    solve_posture(DosGameParams::paper_defaults(p, 1), cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::optimal_buffer_count;

    #[test]
    fn settle_matches_predict_ess_endpoint() {
        for m in [5, 14, 30, 70] {
            let game = DosGameParams::paper_defaults(0.8, m).into_game();
            let offline = crate::ess::predict_ess(&game);
            let settled = settle(&game, ONLINE_MAX_STEPS);
            let (point, kind) = snap_to_candidate(&game, settled);
            assert_eq!(kind, offline.kind, "m={m}");
            assert!(point.distance(&offline.point) < 1e-9, "m={m}");
        }
    }

    #[test]
    fn online_argmin_agrees_with_offline_algorithm_3() {
        for permille in [0u32, 100, 300, 500, 600, 700, 800, 900, 950, 990] {
            let p = f64::from(permille) / 1000.0;
            let offline = optimal_buffer_count(DosGameParams::paper_defaults(p, 1), 50);
            let online = solve_posture_permille(permille, 50);
            assert!(
                online.m.abs_diff(offline.m) <= 1,
                "p={p}: online m*={} vs offline m*={}",
                online.m,
                offline.m
            );
            assert!(
                (online.cost - offline.cost).abs() <= 1.0,
                "p={p}: online cost {} vs offline {}",
                online.cost,
                offline.cost
            );
        }
    }

    #[test]
    fn optimum_grows_with_estimated_attack_level() {
        let low = solve_posture_permille(600, 50);
        let high = solve_posture_permille(900, 50);
        assert!(low.m < high.m, "m*(0.6)={} m*(0.9)={}", low.m, high.m);
        assert!(!low.give_up && !high.give_up);
    }

    #[test]
    fn near_jamming_attack_gives_up() {
        // p = 0.99: every posture saturates at cost R_a — the §V "turns
        // to give up" regime — and the solver says so.
        let posture = solve_posture_permille(990, 50);
        assert!(posture.give_up, "{posture:?}");
        assert!((posture.cost - 200.0).abs() < 1.0, "{}", posture.cost);
    }

    #[test]
    fn clean_traffic_wants_minimum_buffers() {
        let posture = solve_posture_permille(0, 50);
        assert_eq!(posture.m, 1, "{posture:?}");
        assert!(!posture.give_up);
    }

    #[test]
    fn solver_is_deterministic() {
        let a = solve_posture_permille(800, 50);
        let b = solve_posture_permille(800, 50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn rejects_out_of_range_estimate() {
        let _ = solve_posture_permille(1001, 50);
    }
}
