//! The population state of the two-population game.

use std::fmt;

/// `(X, Y)` — the fraction of defenders playing *buffer selection* and of
/// attackers playing *DoS attack*. Both coordinates live in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationState {
    x: f64,
    y: f64,
}

impl PopulationState {
    /// The paper's starting point for every evolution run, `(0.5, 0.5)`.
    pub const CENTER: PopulationState = PopulationState { x: 0.5, y: 0.5 };

    /// Creates a state, validating both coordinates.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y),
            "population fractions must be in [0,1], got ({x}, {y})"
        );
        Self { x, y }
    }

    /// Creates a state, clamping both coordinates into `[0, 1]`.
    ///
    /// The paper's Euler updates are explicitly "adjusted ... to keep
    /// `0 < X ≤ 1` and `0 < Y ≤ 1`"; this is that adjustment.
    #[must_use]
    pub fn clamped(x: f64, y: f64) -> Self {
        Self {
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
        }
    }

    /// Fraction of defenders playing *buffer selection*.
    #[must_use]
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Fraction of attackers playing *DoS attack*.
    #[must_use]
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Chebyshev (max-coordinate) distance to another state.
    #[must_use]
    pub fn distance(&self, other: &PopulationState) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// `true` when the state is on the boundary of the unit square.
    #[must_use]
    pub fn on_boundary(&self) -> bool {
        self.x == 0.0 || self.x == 1.0 || self.y == 0.0 || self.y == 1.0
    }
}

impl fmt::Display for PopulationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(X={:.4}, Y={:.4})", self.x, self.y)
    }
}

impl From<PopulationState> for (f64, f64) {
    fn from(s: PopulationState) -> Self {
        (s.x, s.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_unit_square() {
        let s = PopulationState::new(0.0, 1.0);
        assert_eq!(s.x(), 0.0);
        assert_eq!(s.y(), 1.0);
    }

    #[test]
    #[should_panic(expected = "population fractions")]
    fn new_rejects_out_of_range() {
        let _ = PopulationState::new(1.2, 0.5);
    }

    #[test]
    #[should_panic(expected = "population fractions")]
    fn new_rejects_nan() {
        let _ = PopulationState::new(f64::NAN, 0.5);
    }

    #[test]
    fn clamped_clamps() {
        let s = PopulationState::clamped(1.7, -0.3);
        assert_eq!(s.x(), 1.0);
        assert_eq!(s.y(), 0.0);
        assert!(s.on_boundary());
    }

    #[test]
    fn distance_is_chebyshev() {
        let a = PopulationState::new(0.1, 0.9);
        let b = PopulationState::new(0.4, 0.8);
        assert!((a.distance(&b) - 0.3).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn center_is_half_half() {
        assert_eq!(PopulationState::CENTER.x(), 0.5);
        assert_eq!(PopulationState::CENTER.y(), 0.5);
        assert!(!PopulationState::CENTER.on_boundary());
    }

    #[test]
    fn conversion_to_tuple() {
        let (x, y): (f64, f64) = PopulationState::new(0.25, 0.75).into();
        assert_eq!((x, y), (0.25, 0.75));
    }

    #[test]
    fn display_format() {
        assert_eq!(
            PopulationState::new(0.5, 0.25).to_string(),
            "(X=0.5000, Y=0.2500)"
        );
    }
}
