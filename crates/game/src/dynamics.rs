//! Replicator dynamics for two-population games.
//!
//! For a defender population with strategies {defend, don't} at mix `X`
//! and an attacker population with {attack, don't} at mix `Y`, the
//! standard two-population replicator equations reduce to
//!
//! ```text
//! dX/dt = X(1−X)·[E(U_d)(X,Y) − E(U_nd)(X,Y)]
//! dY/dt = Y(1−Y)·[E(U_a)(X,Y) − E(U_na)(X,Y)]
//! ```
//!
//! which for the DoS game expands to exactly the expressions in §V-D of
//! the paper. The machinery here is generic over [`TwoPopulationGame`] so
//! it also integrates textbook games (used in the tests to sanity-check
//! the integrators).

use crate::state::PopulationState;

/// A two-population game with two strategies per side: supplies the four
/// expected strategy pay-offs as functions of the population state.
///
/// Pay-offs may depend on the state itself (the DoS game's costs are
/// congestion-coupled), which strictly generalises constant bimatrix
/// games.
pub trait TwoPopulationGame {
    /// Expected pay-off of a defender playing *defend* (`E(U_d)`).
    fn payoff_defend(&self, state: PopulationState) -> f64;
    /// Expected pay-off of a defender playing *don't defend* (`E(U_nd)`).
    fn payoff_no_defend(&self, state: PopulationState) -> f64;
    /// Expected pay-off of an attacker playing *attack* (`E(U_a)`).
    fn payoff_attack(&self, state: PopulationState) -> f64;
    /// Expected pay-off of an attacker playing *don't attack* (`E(U_na)`).
    fn payoff_no_attack(&self, state: PopulationState) -> f64;

    /// Population-average defender pay-off `E(d)`.
    fn mean_defender_payoff(&self, state: PopulationState) -> f64 {
        state.x() * self.payoff_defend(state) + (1.0 - state.x()) * self.payoff_no_defend(state)
    }

    /// Population-average attacker pay-off `E(a)`.
    fn mean_attacker_payoff(&self, state: PopulationState) -> f64 {
        state.y() * self.payoff_attack(state) + (1.0 - state.y()) * self.payoff_no_attack(state)
    }
}

/// The replicator vector field of a game.
#[derive(Debug, Clone, Copy)]
pub struct ReplicatorField<'g, G> {
    game: &'g G,
}

impl<'g, G: TwoPopulationGame> ReplicatorField<'g, G> {
    /// Wraps a game.
    #[must_use]
    pub fn new(game: &'g G) -> Self {
        Self { game }
    }

    /// `(dX/dt, dY/dt)` at `state`.
    #[must_use]
    pub fn derivative(&self, state: PopulationState) -> (f64, f64) {
        let adv_d = self.game.payoff_defend(state) - self.game.payoff_no_defend(state);
        let adv_a = self.game.payoff_attack(state) - self.game.payoff_no_attack(state);
        (
            state.x() * (1.0 - state.x()) * adv_d,
            state.y() * (1.0 - state.y()) * adv_a,
        )
    }

    /// Numeric Jacobian of the field at `state` (central differences,
    /// clamped to the unit square so boundary points work).
    #[must_use]
    pub fn jacobian(&self, state: PopulationState) -> [[f64; 2]; 2] {
        // One-sided differences near the boundary keep the evaluation
        // points inside the domain where payoffs are defined.
        let h = 1e-6;
        let eval = |x: f64, y: f64| self.derivative(PopulationState::new(x, y));
        let partial = |coord: usize| {
            let (lo, hi, width) = {
                let v = if coord == 0 { state.x() } else { state.y() };
                let lo = (v - h).max(0.0);
                let hi = (v + h).min(1.0);
                (lo, hi, hi - lo)
            };
            let (f_lo, f_hi) = if coord == 0 {
                (eval(lo, state.y()), eval(hi, state.y()))
            } else {
                (eval(state.x(), lo), eval(state.x(), hi))
            };
            ((f_hi.0 - f_lo.0) / width, (f_hi.1 - f_lo.1) / width)
        };
        let (dfdx, dgdx) = partial(0);
        let (dfdy, dgdy) = partial(1);
        [[dfdx, dfdy], [dgdx, dgdy]]
    }
}

/// How far inside the unit square interior trajectories are kept.
///
/// A plain clamp to `[0, 1]` makes the boundary *absorbing*: a coarse
/// Euler step that overshoots `Y = 1` would freeze there even when that
/// edge is unstable, because the `Y(1−Y)` factor vanishes. The continuous
/// replicator flow never reaches the boundary in finite time, so we
/// mirror the paper's "adjustment ... to keep `0 < X ≤ 1`" by clamping
/// interior states to `[ε, 1−ε]` — close enough to the edge to count as
/// converged there, far enough to escape when the edge repels. States
/// that *start* exactly on the boundary stay there (pure populations are
/// genuine fixed points).
pub const BOUNDARY_GUARD: f64 = 1e-6;

fn guarded(previous: f64, next: f64) -> f64 {
    if previous == 0.0 || previous == 1.0 {
        // Boundary states are invariant under replication.
        previous
    } else {
        next.clamp(BOUNDARY_GUARD, 1.0 - BOUNDARY_GUARD)
    }
}

/// The paper's integrator: explicit Euler with the update
/// `X ← X + (dX/dt)·t`, `t = 0.01`, guarded at the boundary (see
/// [`BOUNDARY_GUARD`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EulerIntegrator {
    /// Step size `t`.
    pub dt: f64,
}

impl EulerIntegrator {
    /// The paper's step size, `t = 0.01`.
    pub const PAPER_DT: f64 = 0.01;

    /// An integrator with the paper's step size.
    #[must_use]
    pub fn paper() -> Self {
        Self { dt: Self::PAPER_DT }
    }

    /// One update step.
    #[must_use]
    pub fn step<G: TwoPopulationGame>(&self, game: &G, state: PopulationState) -> PopulationState {
        let (dx, dy) = ReplicatorField::new(game).derivative(state);
        PopulationState::clamped(
            guarded(state.x(), state.x() + dx * self.dt),
            guarded(state.y(), state.y() + dy * self.dt),
        )
    }
}

impl Default for EulerIntegrator {
    fn default() -> Self {
        Self::paper()
    }
}

/// Classic fourth-order Runge-Kutta, for checking that results are not an
/// artefact of the paper's coarse Euler scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk4Integrator {
    /// Step size.
    pub dt: f64,
}

impl Rk4Integrator {
    /// One update step.
    #[must_use]
    pub fn step<G: TwoPopulationGame>(&self, game: &G, state: PopulationState) -> PopulationState {
        let field = ReplicatorField::new(game);
        let f = |s: PopulationState| field.derivative(s);
        let at = |s: PopulationState, k: (f64, f64), scale: f64| {
            PopulationState::clamped(s.x() + k.0 * scale, s.y() + k.1 * scale)
        };
        let k1 = f(state);
        let k2 = f(at(state, k1, self.dt / 2.0));
        let k3 = f(at(state, k2, self.dt / 2.0));
        let k4 = f(at(state, k3, self.dt));
        PopulationState::clamped(
            guarded(
                state.x(),
                state.x() + self.dt / 6.0 * (k1.0 + 2.0 * k2.0 + 2.0 * k3.0 + k4.0),
            ),
            guarded(
                state.y(),
                state.y() + self.dt / 6.0 * (k1.1 + 2.0 * k2.1 + 2.0 * k3.1 + k4.1),
            ),
        )
    }
}

/// A recorded evolution run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    states: Vec<PopulationState>,
    converged_at: Option<usize>,
}

impl Trajectory {
    /// All states, starting with the initial one.
    #[must_use]
    pub fn states(&self) -> &[PopulationState] {
        &self.states
    }

    /// The last state reached.
    #[must_use]
    pub fn last(&self) -> PopulationState {
        *self.states.last().expect("trajectory has an initial state")
    }

    /// The step at which the run converged (per-step displacement fell
    /// below the tolerance), or `None` if it ran out of steps first.
    #[must_use]
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// Number of update steps taken.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.states.len() - 1
    }
}

/// Default per-step displacement below which a run counts as converged.
pub const CONVERGENCE_TOL: f64 = 1e-9;

/// Evolves `game` from `initial` with the paper's Euler scheme for at
/// most `max_steps` steps, stopping early once the per-step displacement
/// drops below [`CONVERGENCE_TOL`].
#[must_use]
pub fn evolve<G: TwoPopulationGame>(
    game: &G,
    initial: PopulationState,
    max_steps: usize,
) -> Trajectory {
    evolve_with(
        game,
        initial,
        max_steps,
        EulerIntegrator::paper(),
        CONVERGENCE_TOL,
    )
}

/// [`evolve`] with an explicit integrator and tolerance.
#[must_use]
pub fn evolve_with<G: TwoPopulationGame>(
    game: &G,
    initial: PopulationState,
    max_steps: usize,
    integrator: EulerIntegrator,
    tol: f64,
) -> Trajectory {
    let mut states = Vec::with_capacity(max_steps.min(4096) + 1);
    states.push(initial);
    let mut converged_at = None;
    let mut current = initial;
    for step in 1..=max_steps {
        let next = integrator.step(game, current);
        let moved = next.distance(&current);
        states.push(next);
        current = next;
        if moved < tol {
            converged_at = Some(step);
            break;
        }
    }
    Trajectory {
        states,
        converged_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::DosGameParams;

    /// A constant bimatrix game for integrator sanity checks.
    struct Bimatrix {
        /// Defender pay-offs: [defend][attack], [defend][no], [no][attack], [no][no].
        d: [[f64; 2]; 2],
        /// Attacker pay-offs, same indexing.
        a: [[f64; 2]; 2],
    }

    impl TwoPopulationGame for Bimatrix {
        fn payoff_defend(&self, s: PopulationState) -> f64 {
            s.y() * self.d[0][0] + (1.0 - s.y()) * self.d[0][1]
        }
        fn payoff_no_defend(&self, s: PopulationState) -> f64 {
            s.y() * self.d[1][0] + (1.0 - s.y()) * self.d[1][1]
        }
        fn payoff_attack(&self, s: PopulationState) -> f64 {
            s.x() * self.a[0][0] + (1.0 - s.x()) * self.a[1][0]
        }
        fn payoff_no_attack(&self, s: PopulationState) -> f64 {
            s.x() * self.a[0][1] + (1.0 - s.x()) * self.a[1][1]
        }
    }

    /// Both sides strictly prefer the first strategy: dynamics must reach
    /// (1,1) from anywhere inside.
    #[test]
    fn dominant_strategy_game_converges_to_corner() {
        let g = Bimatrix {
            d: [[2.0, 2.0], [1.0, 1.0]],
            a: [[3.0, 0.0], [3.0, 0.0]],
        };
        let t = evolve(&g, PopulationState::CENTER, 100_000);
        assert!(t.last().distance(&PopulationState::new(1.0, 1.0)) < 1e-3);
        assert!(t.converged_at().is_some());
    }

    /// Matching pennies has a unique interior equilibrium at (0.5, 0.5);
    /// replicator dynamics orbit it without converging, so the field at
    /// the center must vanish and short runs must stay near the center.
    #[test]
    fn matching_pennies_center_is_stationary() {
        let g = Bimatrix {
            d: [[1.0, -1.0], [-1.0, 1.0]],
            a: [[-1.0, 1.0], [1.0, -1.0]],
        };
        let field = ReplicatorField::new(&g);
        let (dx, dy) = field.derivative(PopulationState::CENTER);
        assert!(dx.abs() < 1e-12 && dy.abs() < 1e-12);
        let t = evolve(&g, PopulationState::new(0.6, 0.5), 1000);
        // Orbit: must not collapse to a corner.
        assert!(!t.last().on_boundary());
    }

    #[test]
    fn paper_replicator_expressions_match_field() {
        // dX/dt = X(1−X)[R_a·Y·(1−p^m) − k2·m·X]
        // dY/dt = Y(1−Y)[(p^m−1)·X·R_a + R_a − k1·x_a·Y]
        let game = DosGameParams::paper_defaults(0.8, 20).into_game();
        let field = ReplicatorField::new(&game);
        let pm = 0.8f64.powi(20);
        for &(x, y) in &[(0.3, 0.7), (0.5, 0.5), (0.9, 0.2), (0.05, 0.95)] {
            let s = PopulationState::new(x, y);
            let (dx, dy) = field.derivative(s);
            let want_dx = x * (1.0 - x) * (200.0 * y * (1.0 - pm) - 4.0 * 20.0 * x);
            let want_dy = y * (1.0 - y) * ((pm - 1.0) * x * 200.0 + 200.0 - 20.0 * 0.8 * y);
            assert!(
                (dx - want_dx).abs() < 1e-9,
                "dX at ({x},{y}): {dx} vs {want_dx}"
            );
            assert!(
                (dy - want_dy).abs() < 1e-9,
                "dY at ({x},{y}): {dy} vs {want_dy}"
            );
        }
    }

    #[test]
    fn corners_are_fixed_points() {
        let game = DosGameParams::paper_defaults(0.8, 20).into_game();
        let field = ReplicatorField::new(&game);
        for &(x, y) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let (dx, dy) = field.derivative(PopulationState::new(x, y));
            assert_eq!((dx, dy), (0.0, 0.0), "corner ({x},{y})");
        }
    }

    #[test]
    fn euler_respects_unit_square() {
        let game = DosGameParams::paper_defaults(0.8, 5).into_game();
        let mut s = PopulationState::new(0.99, 0.99);
        let euler = EulerIntegrator { dt: 0.5 }; // deliberately huge step
        for _ in 0..100 {
            s = euler.step(&game, s);
            assert!((0.0..=1.0).contains(&s.x()));
            assert!((0.0..=1.0).contains(&s.y()));
        }
    }

    #[test]
    fn rk4_and_euler_agree_on_smooth_run() {
        let game = DosGameParams::paper_defaults(0.8, 30).into_game();
        let euler = EulerIntegrator { dt: 0.001 };
        let rk4 = Rk4Integrator { dt: 0.001 };
        let mut a = PopulationState::CENTER;
        let mut b = PopulationState::CENTER;
        for _ in 0..5000 {
            a = euler.step(&game, a);
            b = rk4.step(&game, b);
        }
        assert!(a.distance(&b) < 1e-2, "euler {a} vs rk4 {b}");
    }

    #[test]
    fn jacobian_matches_analytic_form() {
        let game = DosGameParams::paper_defaults(0.8, 20).into_game();
        let field = ReplicatorField::new(&game);
        let pm = 0.8f64.powi(20);
        let (x, y) = (0.4, 0.6);
        let jac = field.jacobian(PopulationState::new(x, y));
        // f = x(1−x)(a·y − b·x), a = R_a(1−p^m), b = k2·m
        let a = 200.0 * (1.0 - pm);
        let b = 4.0 * 20.0;
        let dfdx = (1.0 - 2.0 * x) * (a * y - b * x) + x * (1.0 - x) * (-b);
        let dfdy = x * (1.0 - x) * a;
        assert!((jac[0][0] - dfdx).abs() < 1e-4, "{} vs {dfdx}", jac[0][0]);
        assert!((jac[0][1] - dfdy).abs() < 1e-4, "{} vs {dfdy}", jac[0][1]);
        // g = y(1−y)(c − a·x − e·y), c = R_a, e = k1·x_a
        let e = 20.0 * 0.8;
        let dgdx = y * (1.0 - y) * (-a);
        let dgdy = (1.0 - 2.0 * y) * (200.0 - a * x - e * y) + y * (1.0 - y) * (-e);
        assert!((jac[1][0] - dgdx).abs() < 1e-4, "{} vs {dgdx}", jac[1][0]);
        assert!((jac[1][1] - dgdy).abs() < 1e-4, "{} vs {dgdy}", jac[1][1]);
    }

    #[test]
    fn trajectory_records_initial_state() {
        let game = DosGameParams::paper_defaults(0.8, 20).into_game();
        let t = evolve(&game, PopulationState::CENTER, 10);
        assert_eq!(t.states()[0], PopulationState::CENTER);
        assert_eq!(t.steps(), 10);
    }

    #[test]
    fn mean_payoffs_are_population_averages() {
        let game = DosGameParams::paper_defaults(0.8, 10).into_game();
        let s = PopulationState::new(0.25, 0.75);
        let want_d = 0.25 * game.payoff_defend(s) + 0.75 * game.payoff_no_defend(s);
        let want_a = 0.75 * game.payoff_attack(s) + 0.25 * game.payoff_no_attack(s);
        assert!((game.mean_defender_payoff(s) - want_d).abs() < 1e-12);
        assert!((game.mean_attacker_payoff(s) - want_a).abs() < 1e-12);
    }
}
