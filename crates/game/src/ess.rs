//! Fixed points, stability and the paper's five ESS candidates.
//!
//! Setting `dX/dt = dY/dt = 0` gives nine candidate rest points; §V-E
//! shows that only five can be evolutionarily stable:
//!
//! | name | `(X, Y)` |
//! |---|---|
//! | [`EssKind::GiveUpDefense`]          | `(0, 1)` |
//! | [`EssKind::PartialDefenseFullAttack`] | `(X′, 1)`, `X′ = (1−p^m)·R_a / (k2·m)` |
//! | [`EssKind::FullDefensePartialAttack`] | `(1, Y′)`, `Y′ = p^m·R_a / (k1·x_a)` |
//! | [`EssKind::FullDefenseFullAttack`]  | `(1, 1)` |
//! | [`EssKind::Interior`]               | `(X*, Y*)` from §V-E case 5 |
//!
//! Two complementary tools are provided:
//!
//! * [`ess_candidates`] — the closed-form candidates with a local
//!   stability verdict from the numeric Jacobian;
//! * [`predict_ess`] — the paper's empirical method: run the replicator
//!   dynamics from `(0.5, 0.5)` and report where they settle and how many
//!   steps it took (this is what Fig. 6 plots).

use crate::dynamics::{evolve, ReplicatorField, TwoPopulationGame};
use crate::payoff::DosGame;
use crate::state::PopulationState;

/// Which of the paper's five ESS shapes a point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EssKind {
    /// `(0, 1)` — defense is hopeless/uneconomical; nodes stop buffering
    /// while attackers keep attacking.
    GiveUpDefense,
    /// `(X′, 1)` — only a fraction of nodes buffer; attackers all attack.
    PartialDefenseFullAttack,
    /// `(1, Y′)` — every node buffers; only a fraction of attackers
    /// persist.
    FullDefensePartialAttack,
    /// `(1, 1)` — everyone defends, everyone attacks.
    FullDefenseFullAttack,
    /// `(X*, Y*)` strictly inside the unit square.
    Interior,
}

impl std::fmt::Display for EssKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EssKind::GiveUpDefense => "(0, 1)",
            EssKind::PartialDefenseFullAttack => "(X', 1)",
            EssKind::FullDefensePartialAttack => "(1, Y')",
            EssKind::FullDefenseFullAttack => "(1, 1)",
            EssKind::Interior => "(X*, Y*)",
        };
        f.write_str(s)
    }
}

/// A candidate rest point together with its stability verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EssCandidate {
    /// The rest point.
    pub point: PopulationState,
    /// Its shape.
    pub kind: EssKind,
    /// `true` when the numeric Jacobian certifies local asymptotic
    /// stability (both eigenvalues have negative real part).
    pub stable: bool,
}

/// The result of evolving the game from the paper's `(0.5, 0.5)` start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EssOutcome {
    /// Where the dynamics settled.
    pub point: PopulationState,
    /// The matching ESS shape.
    pub kind: EssKind,
    /// Euler steps (`t = 0.01`) until the per-step displacement fell
    /// below the convergence tolerance, or `None` when the run hit the
    /// step limit (orbiting) — the final state is still reported.
    pub steps: Option<usize>,
}

/// `X′ = (1−p^m)·R_a / (k2·m)` — the partial-defense fraction on the
/// `Y = 1` edge (§V-E case 4).
#[must_use]
pub fn x_prime(game: &DosGame) -> f64 {
    let p = game.params();
    (1.0 - game.attack_success()) * p.ra / (p.k2 * f64::from(p.m))
}

/// `Y′ = p^m·R_a / (k1·x_a)` — the persistent-attacker fraction on the
/// `X = 1` edge (§V-E case 3). With `p = 0` there is nothing to gain by
/// attacking a fully defended network, so `Y′ = 0`.
#[must_use]
pub fn y_prime(game: &DosGame) -> f64 {
    let p = game.params();
    if p.p == 0.0 {
        return 0.0;
    }
    game.attack_success() * p.ra / (p.k1 * p.p)
}

/// The interior rest point `(X*, Y*)` of §V-E case 5:
///
/// ```text
/// X* = (1−p^m)·R_a²  / D        D = k1·k2·m·x_a + (1−p^m)²·R_a²
/// Y* = k2·m·R_a      / D
/// ```
#[must_use]
pub fn interior_point(game: &DosGame) -> (f64, f64) {
    let p = game.params();
    let q = 1.0 - game.attack_success();
    let m = f64::from(p.m);
    let d = p.k1 * p.k2 * m * p.p + q * q * p.ra * p.ra;
    ((q * p.ra * p.ra) / d, (p.k2 * m * p.ra) / d)
}

/// Local asymptotic stability of a rest point via the numeric Jacobian:
/// trace < 0 and determinant > 0.
#[must_use]
pub fn is_locally_stable<G: TwoPopulationGame>(game: &G, point: PopulationState) -> bool {
    let jac = ReplicatorField::new(game).jacobian(point);
    let trace = jac[0][0] + jac[1][1];
    let det = jac[0][0] * jac[1][1] - jac[0][1] * jac[1][0];
    trace < 0.0 && det > 0.0
}

/// The paper's five ESS candidates for `game`, each with a stability
/// verdict. Candidates whose closed form falls outside the unit square
/// are omitted (they are not population states).
#[must_use]
pub fn ess_candidates(game: &DosGame) -> Vec<EssCandidate> {
    let mut out = Vec::with_capacity(5);
    let mut push = |x: f64, y: f64, kind: EssKind| {
        if (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y) {
            let point = PopulationState::new(x, y);
            out.push(EssCandidate {
                point,
                kind,
                stable: is_locally_stable(game, point),
            });
        }
    };

    push(0.0, 1.0, EssKind::GiveUpDefense);
    push(1.0, 1.0, EssKind::FullDefenseFullAttack);
    let xp = x_prime(game);
    if xp < 1.0 {
        push(xp, 1.0, EssKind::PartialDefenseFullAttack);
    }
    let yp = y_prime(game);
    if yp < 1.0 {
        push(1.0, yp, EssKind::FullDefensePartialAttack);
    }
    let (xi, yi) = interior_point(game);
    if (0.0..1.0).contains(&xi) && (0.0..1.0).contains(&yi) && xi > 0.0 && yi > 0.0 {
        push(xi, yi, EssKind::Interior);
    }
    out
}

/// Step budget for [`predict_ess`]; the paper's slowest regime converges
/// in a few hundred steps, so this is generous.
pub const PREDICT_MAX_STEPS: usize = 2_000_000;

/// How close the settled state must come to a closed-form candidate to be
/// labelled with its [`EssKind`].
pub const MATCH_TOL: f64 = 1e-2;

/// Runs the paper's evolution (Euler, `t = 0.01`, from `(0.5, 0.5)`) and
/// classifies the outcome against the closed-form candidates.
///
/// Falls back to classifying the raw coordinates when no candidate is
/// within [`MATCH_TOL`] (this happens when the dynamics are still
/// spiralling at the step limit).
#[must_use]
pub fn predict_ess(game: &DosGame) -> EssOutcome {
    predict_ess_from(game, PopulationState::CENTER)
}

/// [`predict_ess`] from an arbitrary interior start.
#[must_use]
pub fn predict_ess_from(game: &DosGame, initial: PopulationState) -> EssOutcome {
    let trajectory = evolve(game, initial, PREDICT_MAX_STEPS);
    let settled = trajectory.last();

    let mut best: Option<(f64, EssKind, PopulationState)> = None;
    for cand in ess_candidates(game) {
        let d = settled.distance(&cand.point);
        if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
            best = Some((d, cand.kind, cand.point));
        }
    }
    if let Some((d, kind, point)) = best {
        if d <= MATCH_TOL {
            return EssOutcome {
                point,
                kind,
                steps: trajectory.converged_at(),
            };
        }
    }

    EssOutcome {
        point: settled,
        kind: classify_coordinates(settled),
        steps: trajectory.converged_at(),
    }
}

/// Labels raw coordinates with the nearest ESS shape.
#[must_use]
pub fn classify_coordinates(point: PopulationState) -> EssKind {
    let edge = |v: f64| v <= MATCH_TOL || v >= 1.0 - MATCH_TOL;
    let hi = |v: f64| v >= 1.0 - MATCH_TOL;
    let lo = |v: f64| v <= MATCH_TOL;
    match (edge(point.x()), edge(point.y())) {
        (true, true) if lo(point.x()) && hi(point.y()) => EssKind::GiveUpDefense,
        (true, true) if hi(point.x()) && hi(point.y()) => EssKind::FullDefenseFullAttack,
        (true, _) if hi(point.x()) => EssKind::FullDefensePartialAttack,
        (_, true) if hi(point.y()) => EssKind::PartialDefenseFullAttack,
        _ => EssKind::Interior,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::DosGameParams;

    fn paper_game(m: u32) -> DosGame {
        DosGameParams::paper_defaults(0.8, m).into_game()
    }

    #[test]
    fn y_prime_formula() {
        let g = paper_game(10);
        let want = 0.8f64.powi(10) * 200.0 / (20.0 * 0.8);
        assert!((y_prime(&g) - want).abs() < 1e-12);
    }

    #[test]
    fn x_prime_formula() {
        let g = paper_game(60);
        let want = (1.0 - 0.8f64.powi(60)) * 200.0 / (4.0 * 60.0);
        assert!((x_prime(&g) - want).abs() < 1e-12);
    }

    #[test]
    fn interior_point_solves_both_brackets() {
        let g = paper_game(30);
        let (x, y) = interior_point(&g);
        let pm = g.attack_success();
        // dX bracket: R_a·Y·(1−p^m) − k2·m·X = 0
        assert!((200.0 * y * (1.0 - pm) - 4.0 * 30.0 * x).abs() < 1e-9);
        // dY bracket: (p^m−1)·X·R_a + R_a − k1·x_a·Y = 0
        assert!(((pm - 1.0) * x * 200.0 + 200.0 - 20.0 * 0.8 * y).abs() < 1e-9);
    }

    /// The paper's Fig. 6 regime map (§VI-B-2) with R_a=200, k1=20,
    /// k2=4, p=0.8 from (0.5, 0.5):
    ///   1 ≤ m ≤ 11  → (1, 1)
    ///   12 ≤ m ≤ ~17 → (1, Y′)
    ///   ~18 ≤ m ≤ 54 → interior (X*, Y*)
    ///   55 ≤ m      → (X′, 1)
    #[test]
    fn regime_small_m_full_full() {
        for m in [1, 5, 11] {
            let out = predict_ess(&paper_game(m));
            assert_eq!(out.kind, EssKind::FullDefenseFullAttack, "m={m}: {out:?}");
        }
    }

    #[test]
    fn regime_medium_m_full_defense_partial_attack() {
        for m in [12, 14, 16] {
            let out = predict_ess(&paper_game(m));
            assert_eq!(
                out.kind,
                EssKind::FullDefensePartialAttack,
                "m={m}: {out:?}"
            );
            let y = y_prime(&paper_game(m));
            assert!(
                (out.point.y() - y).abs() < 2e-2,
                "m={m}: Y={} vs Y'={y}",
                out.point.y()
            );
        }
    }

    #[test]
    fn regime_large_m_interior() {
        for m in [20, 30, 45, 54] {
            let out = predict_ess(&paper_game(m));
            assert_eq!(out.kind, EssKind::Interior, "m={m}: {out:?}");
            let (xi, yi) = interior_point(&paper_game(m));
            assert!((out.point.x() - xi).abs() < 2e-2, "m={m}");
            assert!((out.point.y() - yi).abs() < 2e-2, "m={m}");
        }
    }

    #[test]
    fn regime_huge_m_partial_defense() {
        for m in [60, 80, 100] {
            let out = predict_ess(&paper_game(m));
            assert_eq!(
                out.kind,
                EssKind::PartialDefenseFullAttack,
                "m={m}: {out:?}"
            );
            let x = x_prime(&paper_game(m));
            assert!((out.point.x() - x).abs() < 2e-2, "m={m}");
        }
    }

    /// Fig. 6a/6d converge "in at most 4 steps" (fast); Fig. 6b/6c take
    /// on the order of 100–200 steps (slow). Check the ordering.
    #[test]
    fn convergence_speed_ordering_matches_paper() {
        let fast = predict_ess(&paper_game(5)).steps.expect("converges");
        let slow = predict_ess(&paper_game(14)).steps.expect("converges");
        let spiral = predict_ess(&paper_game(30)).steps.expect("converges");
        assert!(fast < slow, "fast={fast} slow={slow}");
        assert!(fast < spiral, "fast={fast} spiral={spiral}");
    }

    #[test]
    fn zero_one_never_stable_under_paper_economy() {
        // §V-E case 1: since R_a > C_a, (0,0) cannot be ESS and (0,1) is
        // only reachable when defense is pointless; with the paper's
        // economy and moderate m, (0,1) is unstable.
        let g = paper_game(10);
        assert!(!is_locally_stable(&g, PopulationState::new(0.0, 1.0)));
        assert!(!is_locally_stable(&g, PopulationState::new(0.0, 0.0)));
        assert!(!is_locally_stable(&g, PopulationState::new(1.0, 0.0)));
    }

    #[test]
    fn candidate_list_contains_predicted_ess() {
        for m in [5, 14, 30, 70] {
            let g = paper_game(m);
            let predicted = predict_ess(&g);
            let cands = ess_candidates(&g);
            let found = cands
                .iter()
                .any(|c| c.kind == predicted.kind && c.point.distance(&predicted.point) < 1e-6);
            assert!(
                found,
                "m={m}: predicted {predicted:?} not in candidates {cands:?}"
            );
        }
    }

    #[test]
    fn stability_verdict_agrees_with_dynamics() {
        for m in [5, 14, 30, 70] {
            let g = paper_game(m);
            let predicted = predict_ess(&g);
            for cand in ess_candidates(&g) {
                if cand.point.distance(&predicted.point) < 1e-6 {
                    assert!(
                        cand.stable,
                        "m={m}: dynamics settle at {cand:?} but Jacobian disagrees"
                    );
                }
            }
        }
    }

    #[test]
    fn classify_coordinates_covers_all_shapes() {
        assert_eq!(
            classify_coordinates(PopulationState::new(0.0, 1.0)),
            EssKind::GiveUpDefense
        );
        assert_eq!(
            classify_coordinates(PopulationState::new(1.0, 1.0)),
            EssKind::FullDefenseFullAttack
        );
        assert_eq!(
            classify_coordinates(PopulationState::new(1.0, 0.4)),
            EssKind::FullDefensePartialAttack
        );
        assert_eq!(
            classify_coordinates(PopulationState::new(0.4, 1.0)),
            EssKind::PartialDefenseFullAttack
        );
        assert_eq!(
            classify_coordinates(PopulationState::new(0.4, 0.6)),
            EssKind::Interior
        );
    }

    #[test]
    fn display_of_kinds() {
        assert_eq!(EssKind::Interior.to_string(), "(X*, Y*)");
        assert_eq!(EssKind::GiveUpDefense.to_string(), "(0, 1)");
    }

    #[test]
    fn no_attack_game_settles_defenseless() {
        // p = 0: attacks never succeed against any buffering, attacking
        // still costs; defenders also have no reason to pay for buffers.
        let g = DosGameParams::paper_defaults(0.0, 5).into_game();
        let out = predict_ess(&g);
        // Defenders drift to X = 0 because C_d > 0 and attacks are harmless
        // only if... actually with p=0 attacks always fail against
        // defenders but still hit non-defenders; the dynamics decide.
        assert!((0.0..=1.0).contains(&out.point.x()));
        assert!((0.0..=1.0).contains(&out.point.y()));
    }
}
