//! The attacker/defender **evolutionary game** of Ruan et al. (ICDCS 2016).
//!
//! DAP's DoS resistance comes from multi-buffer selection, but buffers cost
//! memory. §V of the paper models the trade-off as a two-population
//! evolutionary game:
//!
//! * **defenders** (network nodes) play *buffer selection* or *no buffers*;
//!   `X` is the fraction defending;
//! * **attackers** play *DoS attack* or *no attack*; `Y` is the fraction
//!   attacking.
//!
//! Payoffs (Table II) are driven by the attack success probability
//! `P = p^m`, the data value `R_a = L_d`, the attack cost `C_a = k1·x_a·Y`
//! and the defense cost `C_d = k2·m·X`. Populations follow **replicator
//! dynamics** and settle at an **evolutionarily stable strategy (ESS)**;
//! the optimal buffer count `m*` minimises the defenders' average cost `E`
//! at the ESS (Algorithm 3).
//!
//! Module map:
//!
//! * [`state`] — the population state `(X, Y) ∈ [0,1]²`;
//! * [`payoff`] — Table II and the closed-form expected utilities;
//! * [`dynamics`] — the [`TwoPopulationGame`] trait, replicator field,
//!   Euler (the paper's integrator) and RK4, trajectories, convergence;
//! * [`ess`] — fixed points, Jacobian stability, the paper's five ESS
//!   candidates, and empirical ESS prediction from the paper's
//!   `(0.5, 0.5)` start;
//! * [`cost`] — the defender cost `E` and the naive-defense cost `N`;
//! * [`optimize`] — Algorithm 3 (optimal `m`), exact argmin and the
//!   paper-literal transcription;
//! * [`online`] — Algorithm 3 as a no-alloc, step-bounded control-loop
//!   step for the live `dap-net` control plane.
//!
//! # Example — reproduce a Fig. 6 regime
//!
//! ```
//! use dap_game::{DosGameParams, ess::{predict_ess, EssKind}};
//!
//! // m = 5 with the paper's economy lands in the (1,1) regime:
//! // everyone defends, everyone attacks.
//! let game = DosGameParams::paper_defaults(0.8, 5).into_game();
//! let outcome = predict_ess(&game);
//! assert_eq!(outcome.kind, EssKind::FullDefenseFullAttack);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bimatrix;
pub mod cost;
pub mod dynamics;
pub mod ess;
pub mod online;
pub mod optimize;
pub mod payoff;
pub mod state;

pub use bimatrix::ConstantBimatrix;
pub use dynamics::{
    EulerIntegrator, ReplicatorField, Rk4Integrator, Trajectory, TwoPopulationGame,
};
pub use ess::{EssKind, EssOutcome};
pub use online::{solve_posture, solve_posture_permille, OnlinePosture};
pub use optimize::{optimal_buffer_count, OptimalBuffer};
pub use payoff::{DosGame, DosGameParams, PayoffMatrix};
pub use state::PopulationState;
