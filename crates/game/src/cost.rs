//! Defense-cost accounting (§V-F and §VI-B-4).
//!
//! The defenders' average cost at a population state is the negated mean
//! defender pay-off:
//!
//! ```text
//! E = −E(d) = k2·m·X² + [1 − (1−p^m)·X]·R_a·Y
//! ```
//!
//! The *naive* defense pins `X = 1` with the maximum buffer count
//! `m = M`; attackers still evolve, settling at `Y′(M)` (or at `Y = 1`
//! when even full defense leaves attacking profitable), giving
//!
//! ```text
//! N = k2·M + p^M·R_a·Y′
//! ```

use crate::dynamics::TwoPopulationGame;
use crate::ess::y_prime;
use crate::payoff::{DosGame, DosGameParams};
use crate::state::PopulationState;

/// The defenders' average cost `E = −E(d)` at `state`.
///
/// ```
/// use dap_game::{DosGameParams, PopulationState, cost::defense_cost};
/// let game = DosGameParams::paper_defaults(0.8, 20).into_game();
/// let at_peace = defense_cost(&game, PopulationState::new(1.0, 0.0));
/// // With no attackers the only cost is the buffers: k2·m = 80.
/// assert!((at_peace - 80.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn defense_cost(game: &DosGame, state: PopulationState) -> f64 {
    -game.mean_defender_payoff(state)
}

/// The closed form `k2·m·X² + [1 − (1−p^m)·X]·R_a·Y` — equal to
/// [`defense_cost`] (kept separate so tests can pin the identity).
#[must_use]
pub fn defense_cost_closed_form(game: &DosGame, state: PopulationState) -> f64 {
    let p = game.params();
    let pm = game.attack_success();
    p.k2 * f64::from(p.m) * state.x() * state.x()
        + (1.0 - (1.0 - pm) * state.x()) * p.ra * state.y()
}

/// The naive-defense cost `N = k2·M + p^M·R_a·Y_ess` for a deployment
/// that forces every node to defend with `cap` buffers, with attackers at
/// their evolutionary response (`Y′(cap)` clamped to 1 — a fraction of a
/// population cannot exceed 1).
#[must_use]
pub fn naive_defense_cost(params: DosGameParams, cap: u32) -> f64 {
    let mut with_cap = params;
    with_cap.m = cap;
    let game = with_cap.into_game();
    let y = y_prime(&game).min(1.0);
    defense_cost_closed_form(&game, PopulationState::new(1.0, y))
}

/// The naive-defense cost exactly as printed in §VI-B-4:
/// `N = k2·M + p^M·R_a·Y′` with `Y′ = p^M·R_a/(k1·x_a)` **unclamped**.
///
/// Under heavy attack `Y′(M) > 1` is not a valid population fraction, but
/// this literal form is what makes the paper's Fig. 8 gap explode past
/// `p ≈ 0.94`; both variants are reported by the `fig8` experiment.
#[must_use]
pub fn naive_defense_cost_paper_literal(params: DosGameParams, cap: u32) -> f64 {
    let mut with_cap = params;
    with_cap.m = cap;
    let game = with_cap.into_game();
    let p = game.params();
    let y = y_prime(&game);
    p.k2 * f64::from(cap) + game.attack_success() * p.ra * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ess::predict_ess;

    #[test]
    fn closed_form_equals_negated_mean_payoff() {
        for m in [1, 10, 30, 50] {
            let game = DosGameParams::paper_defaults(0.8, m).into_game();
            for &(x, y) in &[(0.0, 0.0), (1.0, 1.0), (0.3, 0.8), (0.9, 0.2)] {
                let s = PopulationState::new(x, y);
                let a = defense_cost(&game, s);
                let b = defense_cost_closed_form(&game, s);
                assert!((a - b).abs() < 1e-9, "m={m} at ({x},{y}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn naive_cost_formula_matches_paper() {
        // N = k2·M + p^M·R_a·Y′ when Y′ < 1.
        let n = naive_defense_cost(DosGameParams::paper_defaults(0.8, 1), 50);
        let y = 0.8f64.powi(50) * 200.0 / (20.0 * 0.8);
        let want = 4.0 * 50.0 + 0.8f64.powi(50) * 200.0 * y;
        assert!((n - want).abs() < 1e-9, "{n} vs {want}");
    }

    #[test]
    fn literal_naive_cost_explodes_under_heavy_attack() {
        // With Y′ unclamped the naive cost blows up as p → 1 — the
        // shape behind the paper's Fig. 8 "greatly reduces cost" claim.
        let params = DosGameParams::paper_defaults(0.99, 1);
        let literal = naive_defense_cost_paper_literal(params, 50);
        let clamped = naive_defense_cost(params, 50);
        assert!(literal > clamped, "literal {literal} vs clamped {clamped}");
        assert!(literal > 800.0, "literal {literal}");
    }

    #[test]
    fn literal_and_clamped_agree_when_y_prime_below_one() {
        // p = 0.8: Y′(50) = 0.8^50·200/16 ≈ 1.8e-4 < 1.
        let params = DosGameParams::paper_defaults(0.8, 1);
        let a = naive_defense_cost_paper_literal(params, 50);
        let b = naive_defense_cost(params, 50);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn naive_cost_clamps_y_at_one() {
        // Extremely heavy attack: Y′(M) > 1, so attackers all attack.
        let n = naive_defense_cost(DosGameParams::paper_defaults(0.999, 1), 50);
        let pm = 0.999f64.powi(50);
        let want = 4.0 * 50.0 + (1.0 - (1.0 - pm)) * 200.0;
        assert!((n - want).abs() < 1e-9, "{n} vs {want}");
    }

    #[test]
    fn game_guided_cost_not_worse_than_naive_at_ess() {
        // §VI-B-4's headline: the evolutionary-game-guided defense is
        // cheaper than naive full defense across attack levels.
        for p in [0.5, 0.8, 0.9, 0.95, 0.99] {
            let naive = naive_defense_cost(DosGameParams::paper_defaults(p, 1), 50);
            // Take the best m the optimiser would consider.
            let best = (1..=50)
                .map(|m| {
                    let game = DosGameParams::paper_defaults(p, m).into_game();
                    let out = predict_ess(&game);
                    defense_cost(&game, out.point)
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                best <= naive + 1e-6,
                "p={p}: game-guided {best} > naive {naive}"
            );
        }
    }

    /// A closed-form identity the paper does not state but its "give up"
    /// regime relies on: at the (X′, 1) ESS the defender cost is exactly
    /// R_a, independent of m. Substituting X′ = (1−p^m)·R_a/(k2·m):
    /// `k2·m·X′² + [1−(1−p^m)·X′]·R_a = R_a`.
    #[test]
    fn partial_defense_cost_is_exactly_ra() {
        for (p, m) in [(0.99, 10), (0.97, 40), (0.8, 60), (0.95, 50)] {
            let game = DosGameParams::paper_defaults(p, m).into_game();
            let xp = crate::ess::x_prime(&game);
            if xp <= 1.0 {
                let cost = defense_cost(&game, PopulationState::new(xp, 1.0));
                assert!((cost - 200.0).abs() < 1e-9, "p={p} m={m}: {cost}");
            }
        }
    }

    #[test]
    fn cost_zero_when_nobody_plays() {
        let game = DosGameParams::paper_defaults(0.8, 10).into_game();
        assert_eq!(defense_cost(&game, PopulationState::new(0.0, 0.0)), 0.0);
    }

    #[test]
    fn cost_under_full_attack_without_defense_is_full_damage() {
        let game = DosGameParams::paper_defaults(0.8, 10).into_game();
        let c = defense_cost(&game, PopulationState::new(0.0, 1.0));
        assert!((c - 200.0).abs() < 1e-9);
    }
}
