//! The DoS attack-defense game: parameters, Table II and expected
//! utilities.
//!
//! Notation (Table I of the paper):
//!
//! | symbol | meaning |
//! |---|---|
//! | `m`   | number of buffers defenders use |
//! | `x_a` | fraction of bandwidth used by attackers |
//! | `p`   | fraction of forged data (`p = x_a`) |
//! | `P`   | success probability of an attack, `P = p^m` |
//! | `L_d` | damage to a defender under a successful attack (`L_d = R_a`) |
//! | `R_a` | reward of a successful attack |
//! | `C_a` | attacker cost, `C_a = k1·x_a·Y` |
//! | `C_d` | defender cost, `C_d = k2·m·X` |
//!
//! Both costs are *congestion-coupled*: they grow with the fraction of the
//! own population playing the aggressive strategy, which is what gives the
//! replicator dynamics its interior sink.

use crate::dynamics::TwoPopulationGame;
use crate::state::PopulationState;

/// Scenario parameters of one concrete game instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DosGameParams {
    /// Reward of a successful attack, `R_a` (= the defender damage `L_d`).
    pub ra: f64,
    /// Attacker cost coefficient `k1` (`C_a = k1·x_a·Y`).
    pub k1: f64,
    /// Defender cost coefficient `k2` (`C_d = k2·m·X`).
    pub k2: f64,
    /// Fraction of forged data `p` = attacker bandwidth fraction `x_a`.
    pub p: f64,
    /// Number of buffers `m` used by defending nodes.
    pub m: u32,
}

impl DosGameParams {
    /// The evaluation settings of §VI-B: `R_a = 200`, `k1 = 20`, `k2 = 4`.
    ///
    /// The paper motivates them by `R_a > k1 ≥ C_a` (attacking is worth
    /// its cost) and `R_a ≤ k2·M` with `M = 50` (defending with *all*
    /// resources costs slightly more than the data is worth).
    #[must_use]
    pub fn paper_defaults(p: f64, m: u32) -> Self {
        Self {
            ra: 200.0,
            k1: 20.0,
            k2: 4.0,
            p,
            m,
        }
    }

    /// Validates and freezes the parameters into a [`DosGame`].
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is non-positive or non-finite, if
    /// `p ∉ [0, 1)`, or if `m == 0` (a defender with zero buffers is the
    /// *no buffers* strategy, not a buffer-selection parameter).
    #[must_use]
    pub fn into_game(self) -> DosGame {
        assert!(
            self.ra.is_finite() && self.ra > 0.0,
            "R_a must be positive, got {}",
            self.ra
        );
        assert!(
            self.k1.is_finite() && self.k1 > 0.0,
            "k1 must be positive, got {}",
            self.k1
        );
        assert!(
            self.k2.is_finite() && self.k2 > 0.0,
            "k2 must be positive, got {}",
            self.k2
        );
        assert!(
            (0.0..1.0).contains(&self.p),
            "p must be in [0,1), got {}",
            self.p
        );
        assert!(self.m >= 1, "m must be at least 1");
        DosGame { params: self }
    }
}

/// A validated game instance; implements [`TwoPopulationGame`] so the
/// replicator machinery in [`crate::dynamics`] can evolve it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DosGame {
    params: DosGameParams,
}

impl DosGame {
    /// The underlying parameters.
    #[must_use]
    pub fn params(&self) -> &DosGameParams {
        &self.params
    }

    /// Attack success probability `P = p^m`: all `m` buffers hold forged
    /// copies.
    #[must_use]
    pub fn attack_success(&self) -> f64 {
        self.params.p.powi(self.params.m as i32)
    }

    /// Defender cost `C_d = k2·m·X` at population state `state`.
    #[must_use]
    pub fn defender_cost(&self, state: PopulationState) -> f64 {
        self.params.k2 * f64::from(self.params.m) * state.x()
    }

    /// Attacker cost `C_a = k1·x_a·Y` at population state `state`
    /// (with `x_a = p`).
    #[must_use]
    pub fn attacker_cost(&self, state: PopulationState) -> f64 {
        self.params.k1 * self.params.p * state.y()
    }

    /// The 2×2 pay-off matrix of Table II evaluated at `state`.
    #[must_use]
    pub fn payoff_matrix(&self, state: PopulationState) -> PayoffMatrix {
        let p_succ = self.attack_success();
        let cd = self.defender_cost(state);
        let ca = self.attacker_cost(state);
        let ra = self.params.ra;
        let ld = ra; // L_d = R_a by assumption.
        PayoffMatrix {
            defend_vs_attack: (-cd - p_succ * ld, p_succ * ra - ca),
            defend_vs_no_attack: (-cd, 0.0),
            no_defend_vs_attack: (-ld, ra - ca),
            no_defend_vs_no_attack: (0.0, 0.0),
        }
    }
}

impl TwoPopulationGame for DosGame {
    /// `E(U_d) = Y·(−C_d − P·L_d) + (1−Y)·(−C_d)`.
    fn payoff_defend(&self, state: PopulationState) -> f64 {
        let m = self.payoff_matrix(state);
        state.y() * m.defend_vs_attack.0 + (1.0 - state.y()) * m.defend_vs_no_attack.0
    }

    /// `E(U_nd) = Y·(−L_d)`.
    fn payoff_no_defend(&self, state: PopulationState) -> f64 {
        let m = self.payoff_matrix(state);
        state.y() * m.no_defend_vs_attack.0 + (1.0 - state.y()) * m.no_defend_vs_no_attack.0
    }

    /// `E(U_a) = X·(P·R_a − C_a) + (1−X)·(R_a − C_a)`.
    fn payoff_attack(&self, state: PopulationState) -> f64 {
        let m = self.payoff_matrix(state);
        state.x() * m.defend_vs_attack.1 + (1.0 - state.x()) * m.no_defend_vs_attack.1
    }

    /// `E(U_na) = 0`.
    fn payoff_no_attack(&self, state: PopulationState) -> f64 {
        let m = self.payoff_matrix(state);
        state.x() * m.defend_vs_no_attack.1 + (1.0 - state.x()) * m.no_defend_vs_no_attack.1
    }
}

/// Table II of the paper: `(defender pay-off, attacker pay-off)` for the
/// four pure-strategy profiles, evaluated at a population state (the
/// costs are population-dependent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayoffMatrix {
    /// (Buffer selection, DoS attack): `(−C_d − P·L_d, P·R_a − C_a)`.
    pub defend_vs_attack: (f64, f64),
    /// (Buffer selection, no attack): `(−C_d, 0)`.
    pub defend_vs_no_attack: (f64, f64),
    /// (No buffers, DoS attack): `(−L_d, R_a − C_a)`.
    pub no_defend_vs_attack: (f64, f64),
    /// (No buffers, no attack): `(0, 0)`.
    pub no_defend_vs_no_attack: (f64, f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::TwoPopulationGame;

    fn game() -> DosGame {
        DosGameParams::paper_defaults(0.8, 10).into_game()
    }

    #[test]
    fn attack_success_is_p_to_the_m() {
        let g = game();
        assert!((g.attack_success() - 0.8f64.powi(10)).abs() < 1e-15);
        let g1 = DosGameParams::paper_defaults(0.0, 5).into_game();
        assert_eq!(g1.attack_success(), 0.0);
    }

    #[test]
    fn costs_scale_with_population() {
        let g = game();
        let s = PopulationState::new(0.5, 0.25);
        assert!((g.defender_cost(s) - 4.0 * 10.0 * 0.5).abs() < 1e-12);
        assert!((g.attacker_cost(s) - 20.0 * 0.8 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn matrix_matches_table_two() {
        let g = game();
        let s = PopulationState::new(1.0, 1.0);
        let m = g.payoff_matrix(s);
        let p_succ = g.attack_success();
        assert!((m.defend_vs_attack.0 - (-40.0 - p_succ * 200.0)).abs() < 1e-9);
        assert!((m.defend_vs_attack.1 - (p_succ * 200.0 - 16.0)).abs() < 1e-9);
        assert_eq!(m.defend_vs_no_attack, (-40.0, 0.0));
        assert_eq!(m.no_defend_vs_attack, (-200.0, 200.0 - 16.0));
        assert_eq!(m.no_defend_vs_no_attack, (0.0, 0.0));
    }

    /// The closed forms printed in §V-D must equal the matrix-derived
    /// expectations.
    #[test]
    fn expected_utilities_match_closed_forms() {
        let g = game();
        let p_succ = g.attack_success();
        for &(x, y) in &[(0.3, 0.7), (0.0, 1.0), (1.0, 0.0), (0.5, 0.5), (0.9, 0.1)] {
            let s = PopulationState::new(x, y);
            let cd = g.defender_cost(s);
            let ca = g.attacker_cost(s);
            let e_ud = y * (-cd - p_succ * 200.0) + (1.0 - y) * (-cd);
            let e_und = y * (-200.0);
            let e_ua = x * (p_succ * 200.0 - ca) + (1.0 - x) * (200.0 - ca);
            assert!(
                (g.payoff_defend(s) - e_ud).abs() < 1e-9,
                "E(Ud) at ({x},{y})"
            );
            assert!(
                (g.payoff_no_defend(s) - e_und).abs() < 1e-9,
                "E(Und) at ({x},{y})"
            );
            assert!(
                (g.payoff_attack(s) - e_ua).abs() < 1e-9,
                "E(Ua) at ({x},{y})"
            );
            assert_eq!(g.payoff_no_attack(s), 0.0, "E(Una) at ({x},{y})");
        }
    }

    #[test]
    fn more_buffers_lower_attack_success() {
        let a = DosGameParams::paper_defaults(0.8, 5).into_game();
        let b = DosGameParams::paper_defaults(0.8, 20).into_game();
        assert!(b.attack_success() < a.attack_success());
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1)")]
    fn rejects_p_of_one() {
        let _ = DosGameParams::paper_defaults(1.0, 5).into_game();
    }

    #[test]
    #[should_panic(expected = "m must be at least 1")]
    fn rejects_zero_buffers() {
        let _ = DosGameParams::paper_defaults(0.5, 0).into_game();
    }

    #[test]
    #[should_panic(expected = "R_a must be positive")]
    fn rejects_nonpositive_reward() {
        let mut p = DosGameParams::paper_defaults(0.5, 5);
        p.ra = 0.0;
        let _ = p.into_game();
    }

    #[test]
    #[should_panic(expected = "k1 must be positive")]
    fn rejects_bad_k1() {
        let mut p = DosGameParams::paper_defaults(0.5, 5);
        p.k1 = -1.0;
        let _ = p.into_game();
    }

    #[test]
    #[should_panic(expected = "k2 must be positive")]
    fn rejects_bad_k2() {
        let mut p = DosGameParams::paper_defaults(0.5, 5);
        p.k2 = f64::NAN;
        let _ = p.into_game();
    }
}
