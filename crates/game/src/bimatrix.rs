//! Constant two-population bimatrix games.
//!
//! The DoS game's pay-offs depend on the population state (its costs are
//! congestion-coupled), but the replicator machinery in
//! [`crate::dynamics`] is generic over [`TwoPopulationGame`] — this
//! module provides the classic constant-matrix instance, both as a
//! building block for users modelling other attacker/defender settings
//! and as a validation target: the textbook results (dominance,
//! coordination, matching-pennies cycling) pin the machinery down.

use crate::dynamics::TwoPopulationGame;
use crate::state::PopulationState;

/// A two-population game with constant pay-off matrices.
///
/// Rows index the *defender* strategies (0 = defend, 1 = don't), columns
/// the *attacker* strategies (0 = attack, 1 = don't); `defender[r][c]`
/// and `attacker[r][c]` are the respective pay-offs for that profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantBimatrix {
    /// Defender pay-offs by `[defender strategy][attacker strategy]`.
    pub defender: [[f64; 2]; 2],
    /// Attacker pay-offs by `[defender strategy][attacker strategy]`.
    pub attacker: [[f64; 2]; 2],
}

impl ConstantBimatrix {
    /// Matching pennies: zero-sum, unique interior equilibrium at
    /// `(1/2, 1/2)` around which replicator dynamics orbit.
    #[must_use]
    pub fn matching_pennies() -> Self {
        Self {
            defender: [[1.0, -1.0], [-1.0, 1.0]],
            attacker: [[-1.0, 1.0], [1.0, -1.0]],
        }
    }

    /// A pure coordination game: both corners `(0,0)`-profile and
    /// `(1,1)`-profile are strict equilibria.
    #[must_use]
    pub fn coordination() -> Self {
        Self {
            defender: [[2.0, 0.0], [0.0, 1.0]],
            attacker: [[2.0, 0.0], [0.0, 1.0]],
        }
    }

    /// Strategy 0 strictly dominant for both sides.
    #[must_use]
    pub fn dominant() -> Self {
        Self {
            defender: [[3.0, 3.0], [1.0, 1.0]],
            attacker: [[2.0, 0.0], [2.0, 0.0]],
        }
    }
}

impl TwoPopulationGame for ConstantBimatrix {
    fn payoff_defend(&self, state: PopulationState) -> f64 {
        state.y() * self.defender[0][0] + (1.0 - state.y()) * self.defender[0][1]
    }
    fn payoff_no_defend(&self, state: PopulationState) -> f64 {
        state.y() * self.defender[1][0] + (1.0 - state.y()) * self.defender[1][1]
    }
    fn payoff_attack(&self, state: PopulationState) -> f64 {
        state.x() * self.attacker[0][0] + (1.0 - state.x()) * self.attacker[1][0]
    }
    fn payoff_no_attack(&self, state: PopulationState) -> f64 {
        state.x() * self.attacker[0][1] + (1.0 - state.x()) * self.attacker[1][1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{evolve, ReplicatorField};

    #[test]
    fn dominant_game_reaches_the_dominant_corner() {
        let g = ConstantBimatrix::dominant();
        let t = evolve(&g, PopulationState::CENTER, 100_000);
        let s = t.last();
        assert!(s.x() > 0.999 && s.y() > 0.999, "{s}");
    }

    #[test]
    fn coordination_game_basins_split() {
        let g = ConstantBimatrix::coordination();
        // Start biased toward (0,0)-profile: converge to X=Y=1 (strategy
        // 0 for both, coordinates x=1 meaning strategy 0 share).
        let hi = evolve(&g, PopulationState::new(0.8, 0.8), 100_000).last();
        assert!(hi.x() > 0.999 && hi.y() > 0.999, "{hi}");
        // Biased the other way: the other equilibrium.
        let lo = evolve(&g, PopulationState::new(0.2, 0.2), 100_000).last();
        assert!(lo.x() < 0.001 && lo.y() < 0.001, "{lo}");
    }

    #[test]
    fn matching_pennies_center_is_a_fixed_point_that_orbits() {
        let g = ConstantBimatrix::matching_pennies();
        let field = ReplicatorField::new(&g);
        let (dx, dy) = field.derivative(PopulationState::CENTER);
        assert!(dx.abs() < 1e-12 && dy.abs() < 1e-12);
        // Off-center starts neither converge to the center nor collapse.
        let t = evolve(&g, PopulationState::new(0.7, 0.5), 20_000);
        let s = t.last();
        assert!(t.converged_at().is_none());
        assert!(s.x() > 0.01 && s.x() < 0.99);
    }

    #[test]
    fn payoffs_linear_in_opponent_mix() {
        let g = ConstantBimatrix::matching_pennies();
        let s = PopulationState::new(0.3, 0.25);
        // E(U_defend) = y·1 + (1−y)·(−1) = 2y − 1.
        assert!((g.payoff_defend(s) - (2.0 * 0.25 - 1.0)).abs() < 1e-12);
        assert!((g.payoff_attack(s) - (-0.3 + 0.7)).abs() < 1e-12);
    }
}
