//! Algorithm 3: choosing the buffer count `m` that minimises the
//! defenders' average cost at the ESS.
//!
//! Two variants are provided:
//!
//! * [`optimal_buffer_count`] — the exact argmin over `m ∈ 1..=cap`,
//!   which is what the algorithm's *intent* ("find the optimal m") and
//!   Fig. 7 require;
//! * [`optimal_buffer_count_paper_literal`] — a faithful transcription of
//!   the pseudo-code as printed, whose `if E_m < E_{m−1}` update keeps
//!   the *last descent* rather than the global argmin. The discrepancy is
//!   documented in `DESIGN.md` §4 and exercised by the tests.

use crate::cost::defense_cost;
use crate::ess::{predict_ess, EssOutcome};
use crate::payoff::DosGameParams;

/// The optimiser's result: the chosen buffer count, the ESS it induces
/// and the cost landscape it searched.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalBuffer {
    /// The chosen number of buffers `m*`.
    pub m: u32,
    /// The ESS the replicator dynamics reach with `m*` buffers.
    pub ess: EssOutcome,
    /// The defenders' average cost at that ESS.
    pub cost: f64,
    /// `(m, cost)` for every candidate examined, in order — exposed so
    /// experiments can plot the landscape without re-running the sweep.
    pub landscape: Vec<(u32, f64)>,
}

/// Evaluates the ESS cost for a single `(p, m)` instance.
#[must_use]
pub fn ess_cost(params: DosGameParams) -> (EssOutcome, f64) {
    let game = params.into_game();
    let ess = predict_ess(&game);
    let cost = defense_cost(&game, ess.point);
    (ess, cost)
}

/// Exact Algorithm 3: sweep `m ∈ 1..=cap`, evolve each game to its ESS,
/// and return the `m` with the minimum defender cost (ties break toward
/// the smaller `m`, which also minimises memory).
///
/// ```
/// use dap_game::{optimal_buffer_count, DosGameParams};
///
/// let best = optimal_buffer_count(DosGameParams::paper_defaults(0.8, 1), 50);
/// assert!((12..=17).contains(&best.m)); // the (1, Y') band at p = 0.8
/// ```
///
/// `cap` is the hardware bound `M` (≤ ~50 buffers per sensor node per
/// Liu & Ning, the paper's §VI-B-1 setting).
///
/// # Panics
///
/// Panics if `cap == 0`.
#[must_use]
pub fn optimal_buffer_count(params: DosGameParams, cap: u32) -> OptimalBuffer {
    assert!(cap >= 1, "buffer cap must be at least 1");
    let mut landscape = Vec::with_capacity(cap as usize);
    let mut best: Option<(u32, EssOutcome, f64)> = None;
    for m in 1..=cap {
        let mut inst = params;
        inst.m = m;
        let (ess, cost) = ess_cost(inst);
        landscape.push((m, cost));
        let better = match &best {
            None => true,
            Some((_, _, best_cost)) => cost < *best_cost,
        };
        if better {
            best = Some((m, ess, cost));
        }
    }
    let (m, ess, cost) = best.expect("cap >= 1 so at least one candidate");
    OptimalBuffer {
        m,
        ess,
        cost,
        landscape,
    }
}

/// Algorithm 3 exactly as printed in the paper: `m_optm` is updated
/// whenever `E_m < E_{m−1}`, so the function returns the end of the last
/// descending run of the cost sequence instead of the argmin.
///
/// Provided for fidelity comparisons; use [`optimal_buffer_count`] for
/// real deployments.
///
/// # Panics
///
/// Panics if `cap == 0`.
#[must_use]
pub fn optimal_buffer_count_paper_literal(params: DosGameParams, cap: u32) -> u32 {
    assert!(cap >= 1, "buffer cap must be at least 1");
    let mut m_optm = 0u32;
    let mut previous = f64::INFINITY; // E_0 = ∞ in the pseudo-code.
    for m in 1..=cap {
        let mut inst = params;
        inst.m = m;
        let (_, e_m) = ess_cost(inst);
        if e_m < previous {
            m_optm = m;
        }
        previous = e_m;
    }
    m_optm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ess::EssKind;

    #[test]
    fn landscape_covers_full_range() {
        let opt = optimal_buffer_count(DosGameParams::paper_defaults(0.8, 1), 20);
        assert_eq!(opt.landscape.len(), 20);
        assert_eq!(opt.landscape[0].0, 1);
        assert_eq!(opt.landscape[19].0, 20);
        // The reported optimum is the landscape argmin.
        let min = opt
            .landscape
            .iter()
            .cloned()
            .fold(
                (0u32, f64::INFINITY),
                |acc, c| if c.1 < acc.1 { c } else { acc },
            );
        assert_eq!(opt.m, min.0);
        assert!((opt.cost - min.1).abs() < 1e-12);
    }

    /// Fig. 7: for moderate attacks the optimum grows with p ...
    #[test]
    fn optimum_grows_with_attack_level() {
        let low = optimal_buffer_count(DosGameParams::paper_defaults(0.60, 1), 50);
        let high = optimal_buffer_count(DosGameParams::paper_defaults(0.90, 1), 50);
        assert!(
            low.m < high.m,
            "m*(0.60)={} should be below m*(0.90)={}",
            low.m,
            high.m
        );
    }

    /// ... and under a near-jamming attack the defense saturates: every
    /// buffer count lands on the (X′, 1) ESS whose defender cost is
    /// exactly R_a (see `cost::tests::partial_defense_cost_is_exactly_ra`),
    /// so buying buffers no longer helps — the paper's "it turns to give
    /// up" regime.
    #[test]
    fn heavy_attack_cost_saturates_at_ra() {
        let opt = optimal_buffer_count(DosGameParams::paper_defaults(0.99, 1), 50);
        assert!((opt.cost - 200.0).abs() < 1.0, "cost={}", opt.cost);
        // At the cap itself the ESS is the partial-defense edge the paper
        // reports for p > 0.94.
        let (ess_at_cap, cost_at_cap) = ess_cost(DosGameParams::paper_defaults(0.99, 50));
        assert_eq!(
            ess_at_cap.kind,
            EssKind::PartialDefenseFullAttack,
            "{ess_at_cap:?}"
        );
        assert!(
            (cost_at_cap - 200.0).abs() < 1.0,
            "cost at cap {cost_at_cap}"
        );
    }

    /// With the paper's economy at p = 0.8 the cost-argmin sits in the
    /// full-defense/partial-attack band (m ≈ 13): the landscape decreases
    /// through the (1,1) band, bottoms out in the (1, Y′) band, and climbs
    /// through the interior band. (The paper's prose instead highlights
    /// the interior ESS here; see EXPERIMENTS.md for the comparison.)
    #[test]
    fn moderate_attack_optimum_in_partial_attack_band() {
        let opt = optimal_buffer_count(DosGameParams::paper_defaults(0.8, 1), 50);
        assert_eq!(
            opt.ess.kind,
            EssKind::FullDefensePartialAttack,
            "{:?}",
            opt.ess
        );
        assert!((12..=17).contains(&opt.m), "m*={}", opt.m);
        // The landscape rises again in the interior band.
        let cost_at_30 = opt.landscape.iter().find(|c| c.0 == 30).unwrap().1;
        assert!(cost_at_30 > opt.cost, "interior band should cost more");
    }

    #[test]
    fn ties_break_toward_smaller_m() {
        // With p = 0 every m ≥ 1 yields the same dynamics shape; the
        // optimiser must return the cheapest (smallest) m among equals —
        // guaranteed by strict `<` in the update.
        let opt = optimal_buffer_count(DosGameParams::paper_defaults(0.0, 1), 10);
        let min_cost = opt
            .landscape
            .iter()
            .map(|c| c.1)
            .fold(f64::INFINITY, f64::min);
        let first_min = opt
            .landscape
            .iter()
            .find(|c| (c.1 - min_cost).abs() < 1e-12)
            .unwrap()
            .0;
        assert_eq!(opt.m, first_min);
    }

    #[test]
    fn paper_literal_differs_when_cost_is_non_monotone() {
        // The literal pseudo-code returns the end of the last descent.
        // Wherever the landscape is unimodal the two agree; the important
        // property is that the literal variant never beats the argmin.
        for p in [0.5, 0.8, 0.95] {
            let params = DosGameParams::paper_defaults(p, 1);
            let exact = optimal_buffer_count(params, 50);
            let literal = optimal_buffer_count_paper_literal(params, 50);
            let literal_cost = exact
                .landscape
                .iter()
                .find(|c| c.0 == literal)
                .map(|c| c.1)
                .unwrap();
            assert!(
                exact.cost <= literal_cost + 1e-12,
                "p={p}: argmin {} beats literal {}",
                exact.cost,
                literal_cost
            );
        }
    }

    #[test]
    #[should_panic(expected = "buffer cap")]
    fn zero_cap_panics() {
        let _ = optimal_buffer_count(DosGameParams::paper_defaults(0.5, 1), 0);
    }
}
