//! Property-based tests for the evolutionary-game engine.

use dap_game::cost::{defense_cost, defense_cost_closed_form, naive_defense_cost};
use dap_game::dynamics::{evolve, EulerIntegrator, ReplicatorField};
use dap_game::ess::{ess_candidates, interior_point, predict_ess, x_prime, y_prime};
use dap_game::{DosGameParams, PopulationState};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = DosGameParams> {
    (
        0.01f64..0.99,
        1u32..80,
        50.0f64..500.0,
        5.0f64..50.0,
        1.0f64..10.0,
    )
        .prop_map(|(p, m, ra, k1, k2)| DosGameParams { ra, k1, k2, p, m })
}

proptest! {
    /// The closed-form cost identity holds for any parameters and state.
    #[test]
    fn cost_closed_form_identity(params in arb_params(),
                                 x in 0.0f64..=1.0, y in 0.0f64..=1.0) {
        let game = params.into_game();
        let s = PopulationState::new(x, y);
        prop_assert!((defense_cost(&game, s) - defense_cost_closed_form(&game, s)).abs() < 1e-6);
    }

    /// Every closed-form candidate is a genuine rest point of the field.
    #[test]
    fn candidates_are_rest_points(params in arb_params()) {
        let game = params.into_game();
        let field = ReplicatorField::new(&game);
        for cand in ess_candidates(&game) {
            let (dx, dy) = field.derivative(cand.point);
            prop_assert!(dx.abs() < 1e-6 && dy.abs() < 1e-6,
                "{cand:?} moves by ({dx}, {dy})");
        }
    }

    /// The interior point formulas solve both replicator brackets.
    #[test]
    fn interior_point_solves_brackets(params in arb_params()) {
        let game = params.into_game();
        let (x, y) = interior_point(&game);
        prop_assume!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        let pm = game.attack_success();
        let bx = params.ra * y * (1.0 - pm) - params.k2 * f64::from(params.m) * x;
        let by = (pm - 1.0) * x * params.ra + params.ra - params.k1 * params.p * y;
        prop_assert!(bx.abs() < 1e-6, "dX bracket {bx}");
        prop_assert!(by.abs() < 1e-6, "dY bracket {by}");
    }

    /// Edge-point formulas: X' zeroes the defender bracket at Y = 1 and
    /// Y' zeroes the attacker bracket at X = 1.
    #[test]
    fn edge_formulas_zero_their_brackets(params in arb_params()) {
        let game = params.into_game();
        let pm = game.attack_success();
        let xp = x_prime(&game);
        if (0.0..=1.0).contains(&xp) {
            let bx = params.ra * 1.0 * (1.0 - pm) - params.k2 * f64::from(params.m) * xp;
            prop_assert!(bx.abs() < 1e-9);
        }
        let yp = y_prime(&game);
        if (0.0..=1.0).contains(&yp) && params.p > 0.0 {
            let by = (pm - 1.0) * params.ra + params.ra - params.k1 * params.p * yp;
            prop_assert!(by.abs() < 1e-9);
        }
    }

    /// Wherever the dynamics settle (from the paper's start), the field
    /// there is negligible — we never report a non-equilibrium as ESS.
    #[test]
    fn predicted_ess_is_stationary(p in 0.05f64..0.95, m in 1u32..60) {
        let game = DosGameParams::paper_defaults(p, m).into_game();
        let out = predict_ess(&game);
        prop_assume!(out.steps.is_some());
        let field = ReplicatorField::new(&game);
        let (dx, dy) = field.derivative(out.point);
        prop_assert!(dx.abs() < 1e-3 && dy.abs() < 1e-3,
            "settled at {} with field ({dx}, {dy})", out.point);
    }

    /// Smaller Euler steps never leave the unit square either.
    #[test]
    fn any_step_size_respects_simplex(params in arb_params(),
                                      dt in 0.0001f64..0.2,
                                      x0 in 0.01f64..0.99, y0 in 0.01f64..0.99) {
        let game = params.into_game();
        let euler = EulerIntegrator { dt };
        let mut s = PopulationState::new(x0, y0);
        for _ in 0..200 {
            s = euler.step(&game, s);
            prop_assert!((0.0..=1.0).contains(&s.x()) && (0.0..=1.0).contains(&s.y()));
        }
    }

    /// Naive cost is monotone in the cap (more forced buffers cost more)
    /// whenever attackers are fully engaged.
    #[test]
    fn naive_cost_monotone_in_cap(p in 0.3f64..0.99) {
        let params = DosGameParams::paper_defaults(p, 1);
        let mut last = 0.0;
        for cap in [10u32, 20, 30, 40, 50] {
            let n = naive_defense_cost(params, cap);
            prop_assert!(n >= last - 40.0, "cap {cap}: {n} << {last}");
            last = n;
        }
    }

    /// Trajectories are deterministic: same game, same start, same path.
    #[test]
    fn evolution_is_deterministic(params in arb_params(),
                                  x0 in 0.01f64..0.99, y0 in 0.01f64..0.99) {
        let game = params.into_game();
        let a = evolve(&game, PopulationState::new(x0, y0), 500);
        let b = evolve(&game, PopulationState::new(x0, y0), 500);
        prop_assert_eq!(a.states(), b.states());
    }
}
