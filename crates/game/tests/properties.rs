//! Property-based tests for the evolutionary-game engine, on the
//! in-tree `dap-testkit` harness (deterministic, seeded, shrinking).

use dap_game::cost::{defense_cost, defense_cost_closed_form, naive_defense_cost};
use dap_game::dynamics::{evolve, EulerIntegrator, ReplicatorField};
use dap_game::ess::{ess_candidates, interior_point, predict_ess, x_prime, y_prime};
use dap_game::{DosGameParams, PopulationState};
use dap_testkit::{assume, check, Gen};

fn arb_params(g: &mut Gen) -> DosGameParams {
    DosGameParams {
        p: g.f64_in(0.01, 0.99),
        m: g.u32_in(1..80),
        ra: g.f64_in(50.0, 500.0),
        k1: g.f64_in(5.0, 50.0),
        k2: g.f64_in(1.0, 10.0),
    }
}

/// The closed-form cost identity holds for any parameters and state.
#[test]
fn cost_closed_form_identity() {
    check("cost_closed_form_identity", |g| {
        let params = arb_params(g);
        let x = g.f64_in(0.0, 1.0);
        let y = g.f64_in(0.0, 1.0);
        let game = params.into_game();
        let s = PopulationState::new(x, y);
        assert!((defense_cost(&game, s) - defense_cost_closed_form(&game, s)).abs() < 1e-6);
    });
}

/// Every closed-form candidate is a genuine rest point of the field.
#[test]
fn candidates_are_rest_points() {
    check("candidates_are_rest_points", |g| {
        let game = arb_params(g).into_game();
        let field = ReplicatorField::new(&game);
        for cand in ess_candidates(&game) {
            let (dx, dy) = field.derivative(cand.point);
            assert!(
                dx.abs() < 1e-6 && dy.abs() < 1e-6,
                "{cand:?} moves by ({dx}, {dy})"
            );
        }
    });
}

/// The interior point formulas solve both replicator brackets.
#[test]
fn interior_point_solves_brackets() {
    check("interior_point_solves_brackets", |g| {
        let params = arb_params(g);
        let game = params.into_game();
        let (x, y) = interior_point(&game);
        assume((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        let pm = game.attack_success();
        let bx = params.ra * y * (1.0 - pm) - params.k2 * f64::from(params.m) * x;
        let by = (pm - 1.0) * x * params.ra + params.ra - params.k1 * params.p * y;
        assert!(bx.abs() < 1e-6, "dX bracket {bx}");
        assert!(by.abs() < 1e-6, "dY bracket {by}");
    });
}

/// Edge-point formulas: X' zeroes the defender bracket at Y = 1 and
/// Y' zeroes the attacker bracket at X = 1.
#[test]
fn edge_formulas_zero_their_brackets() {
    check("edge_formulas_zero_their_brackets", |g| {
        let params = arb_params(g);
        let game = params.into_game();
        let pm = game.attack_success();
        let xp = x_prime(&game);
        if (0.0..=1.0).contains(&xp) {
            let bx = params.ra * 1.0 * (1.0 - pm) - params.k2 * f64::from(params.m) * xp;
            assert!(bx.abs() < 1e-9);
        }
        let yp = y_prime(&game);
        if (0.0..=1.0).contains(&yp) && params.p > 0.0 {
            let by = (pm - 1.0) * params.ra + params.ra - params.k1 * params.p * yp;
            assert!(by.abs() < 1e-9);
        }
    });
}

/// Wherever the dynamics settle (from the paper's start), the field
/// there is negligible — we never report a non-equilibrium as ESS.
#[test]
fn predicted_ess_is_stationary() {
    check("predicted_ess_is_stationary", |g| {
        let p = g.f64_in(0.05, 0.95);
        let m = g.u32_in(1..60);
        let game = DosGameParams::paper_defaults(p, m).into_game();
        let out = predict_ess(&game);
        assume(out.steps.is_some());
        let field = ReplicatorField::new(&game);
        let (dx, dy) = field.derivative(out.point);
        assert!(
            dx.abs() < 1e-3 && dy.abs() < 1e-3,
            "settled at {} with field ({dx}, {dy})",
            out.point
        );
    });
}

/// Smaller Euler steps never leave the unit square either.
#[test]
fn any_step_size_respects_simplex() {
    check("any_step_size_respects_simplex", |g| {
        let game = arb_params(g).into_game();
        let dt = g.f64_in(0.0001, 0.2);
        let x0 = g.f64_in(0.01, 0.99);
        let y0 = g.f64_in(0.01, 0.99);
        let euler = EulerIntegrator { dt };
        let mut s = PopulationState::new(x0, y0);
        for _ in 0..200 {
            s = euler.step(&game, s);
            assert!((0.0..=1.0).contains(&s.x()) && (0.0..=1.0).contains(&s.y()));
        }
    });
}

/// Naive cost is monotone in the cap (more forced buffers cost more)
/// whenever attackers are fully engaged.
#[test]
fn naive_cost_monotone_in_cap() {
    check("naive_cost_monotone_in_cap", |g| {
        let p = g.f64_in(0.3, 0.99);
        let params = DosGameParams::paper_defaults(p, 1);
        let mut last = 0.0;
        for cap in [10u32, 20, 30, 40, 50] {
            let n = naive_defense_cost(params, cap);
            assert!(n >= last - 40.0, "cap {cap}: {n} << {last}");
            last = n;
        }
    });
}

/// Trajectories are deterministic: same game, same start, same path.
#[test]
fn evolution_is_deterministic() {
    check("evolution_is_deterministic", |g| {
        let game = arb_params(g).into_game();
        let x0 = g.f64_in(0.01, 0.99);
        let y0 = g.f64_in(0.01, 0.99);
        let a = evolve(&game, PopulationState::new(x0, y0), 500);
        let b = evolve(&game, PopulationState::new(x0, y0), 500);
        assert_eq!(a.states(), b.states());
    });
}
