//! Multi-lane (multi-buffer) SHA-256 compression over *independent*
//! messages.
//!
//! A single SHA-256 compression is a long serial dependency chain — no
//! instruction-level trick makes one message hash faster. But the
//! verification hot path of this workspace never hashes one message: a
//! pool shard draining its ingress window re-keys and re-MACs a whole
//! batch of frames whose hashes are mutually independent. This module
//! runs `W` such compressions in lockstep, one 32-bit SIMD lane per
//! message: 4 lanes on SSE2 (`__m128i`), 8 lanes on AVX2 (`__m256i`).
//!
//! Everything is std-only and runtime-detected via
//! `std::arch::is_x86_feature_detected!`; the scalar
//! [`Sha256::compress_from`] is the always-correct fallback, so results
//! are bit-identical across hosts and lane widths (pinned by the
//! `tests/simd_lanes.rs` property suite and the NIST/RFC vectors below).
//!
//! The batch entry points are [`digest_many`] (full hashes) and
//! [`digest_many_from_midstates`] (per-lane cached midstates — the HMAC
//! shape: every lane resumes from its own ipad/opad state with the same
//! number of prior bytes). [`crate::hmac::PreparedMacKey::mac_many`],
//! [`crate::mac::mac80_many`] and friends are built on top.
#![allow(unsafe_code)] // SIMD intrinsics; every unsafe call sits behind a feature check.

use std::sync::OnceLock;

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN, INITIAL_STATE};

/// How many independent messages one compression call advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LaneWidth {
    /// One lane: the scalar [`Sha256::compress_from`] reference.
    Scalar,
    /// Four lanes in an SSE2 `__m128i` register per state word.
    W4,
    /// Eight lanes in an AVX2 `__m256i` register per state word.
    W8,
}

impl LaneWidth {
    /// Number of messages compressed per kernel call.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::Scalar => 1,
            LaneWidth::W4 => 4,
            LaneWidth::W8 => 8,
        }
    }
}

impl std::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneWidth::Scalar => f.write_str("scalar"),
            LaneWidth::W4 => f.write_str("x4"),
            LaneWidth::W8 => f.write_str("x8"),
        }
    }
}

/// The widest kernel this host supports, detected once per process.
#[must_use]
pub fn detected() -> LaneWidth {
    static CACHE: OnceLock<LaneWidth> = OnceLock::new();
    *CACHE.get_or_init(|| *supported().last().expect("scalar is always supported"))
}

/// Every lane width usable on this host, narrowest first. Always starts
/// with [`LaneWidth::Scalar`]; equality tests iterate this to pin each
/// kernel against the scalar reference.
#[must_use]
pub fn supported() -> &'static [LaneWidth] {
    static CACHE: OnceLock<Vec<LaneWidth>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut widths = vec![LaneWidth::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                widths.push(LaneWidth::W4);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                widths.push(LaneWidth::W8);
            }
        }
        widths
    })
}

/// Block-parallel compression: `states[i] ← compress(states[i],
/// blocks[i])` for every lane, using the widest kernel the host
/// supports. Lane count is arbitrary; full-width chunks go through the
/// SIMD kernels and the ragged tail through the scalar reference, so the
/// result never depends on the batch size.
///
/// # Panics
///
/// Panics if `states` and `blocks` differ in length.
pub fn compress_many(states: &mut [[u32; 8]], blocks: &[[u8; BLOCK_LEN]]) {
    compress_many_with(detected(), states, blocks);
}

/// [`compress_many`] pinned to a specific kernel width (full-width
/// chunks at `width`, then any narrower supported kernels, then scalar).
/// Exposed so tests and benches can exercise each kernel explicitly.
///
/// # Panics
///
/// Panics if the lengths differ or `width` is not in [`supported`].
pub fn compress_many_with(width: LaneWidth, states: &mut [[u32; 8]], blocks: &[[u8; BLOCK_LEN]]) {
    assert_eq!(states.len(), blocks.len(), "one block per lane state");
    assert!(
        supported().contains(&width),
        "lane width {width} is not supported on this host"
    );
    let n = states.len();
    let mut i = 0;
    #[cfg(target_arch = "x86_64")]
    {
        if width >= LaneWidth::W8 {
            while i + 8 <= n {
                // SAFETY: W8 is in `supported()` only when AVX2 was
                // runtime-detected on this CPU.
                unsafe { x86::compress8(&mut states[i..i + 8], &blocks[i..i + 8]) };
                i += 8;
            }
        }
        if width >= LaneWidth::W4 {
            while i + 4 <= n {
                // SAFETY: W4 (or wider) is in `supported()` only when
                // SSE2 was runtime-detected on this CPU.
                unsafe { x86::compress4(&mut states[i..i + 4], &blocks[i..i + 4]) };
                i += 4;
            }
        }
    }
    while i < n {
        states[i] = Sha256::compress_from(&states[i], &blocks[i]);
        i += 1;
    }
}

/// Batch one-shot SHA-256: `out[i] = sha256(messages[i])`, lane-parallel.
///
/// Messages may have arbitrary (and different) lengths: lanes run in
/// lockstep over their padded block sequences and drop out as they
/// finish, so a ragged batch still fills the SIMD lanes for the blocks
/// it shares.
#[must_use]
pub fn digest_many(messages: &[&[u8]]) -> Vec<[u8; DIGEST_LEN]> {
    let states = vec![INITIAL_STATE; messages.len()];
    digest_many_from_midstates(&states, 0, messages)
}

/// Batch [`crate::sha256::digest_from_midstate`]: lane `i` resumes from
/// `states[i]` (its own cached midstate) with `prior_bytes` already
/// absorbed, and hashes `tails[i]` to completion. This is the HMAC
/// shape — every prepared key contributes its ipad (or opad) state and
/// all lanes share `prior_bytes = 64`.
///
/// # Panics
///
/// Panics if the lengths differ or `prior_bytes` is not a multiple of
/// [`BLOCK_LEN`] (midstates exist only at block boundaries).
#[must_use]
pub fn digest_many_from_midstates(
    states: &[[u32; 8]],
    prior_bytes: u64,
    tails: &[&[u8]],
) -> Vec<[u8; DIGEST_LEN]> {
    assert_eq!(states.len(), tails.len(), "one tail per lane midstate");
    assert!(
        prior_bytes.is_multiple_of(BLOCK_LEN as u64),
        "midstates exist only at block boundaries"
    );
    let n = states.len();
    let mut st = states.to_vec();
    let block_counts: Vec<usize> = tails
        .iter()
        .map(|t| (t.len() + 9).div_ceil(BLOCK_LEN))
        .collect();
    let max_blocks = block_counts.iter().copied().max().unwrap_or(0);

    let mut idx: Vec<usize> = Vec::with_capacity(n);
    let mut lane_states: Vec<[u32; 8]> = Vec::with_capacity(n);
    let mut lane_blocks: Vec<[u8; BLOCK_LEN]> = Vec::with_capacity(n);
    for k in 0..max_blocks {
        idx.clear();
        lane_states.clear();
        lane_blocks.clear();
        for i in 0..n {
            if block_counts[i] > k {
                idx.push(i);
                lane_states.push(st[i]);
                lane_blocks.push(padded_block(tails[i], prior_bytes, k, block_counts[i]));
            }
        }
        compress_many(&mut lane_states, &lane_blocks);
        for (slot, i) in idx.iter().enumerate() {
            st[*i] = lane_states[slot];
        }
    }

    st.iter()
        .map(|state| {
            let mut out = [0u8; DIGEST_LEN];
            for (chunk, word) in out.chunks_exact_mut(4).zip(state.iter()) {
                chunk.copy_from_slice(&word.to_be_bytes());
            }
            out
        })
        .collect()
}

/// The `k`-th 64-byte block of `tail`'s FIPS 180-4 padding: tail bytes,
/// then `0x80`, then zeros, with the 64-bit big-endian bit length (of
/// prefix + tail) closing the final block.
fn padded_block(tail: &[u8], prior_bytes: u64, k: usize, total_blocks: usize) -> [u8; BLOCK_LEN] {
    let len = tail.len();
    let start = k * BLOCK_LEN;
    let mut block = [0u8; BLOCK_LEN];
    if start + BLOCK_LEN <= len {
        block.copy_from_slice(&tail[start..start + BLOCK_LEN]);
        return block;
    }
    if start < len {
        block[..len - start].copy_from_slice(&tail[start..]);
    }
    if len >= start && len - start < BLOCK_LEN {
        block[len - start] = 0x80;
    }
    if k == total_blocks - 1 {
        let bit_len = prior_bytes.wrapping_add(len as u64).wrapping_mul(8);
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
    }
    block
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2 / AVX2 multi-buffer kernels. Layout is struct-of-arrays:
    //! vector register `j` holds state word `j` of every lane, so the 64
    //! rounds are the textbook scalar schedule with each `u32` op
    //! replaced by its packed-`epi32` counterpart.
    //!
    //! Every function here is `unsafe fn` + `#[target_feature]`: callers
    //! (only [`super::compress_many_with`]) must runtime-check the
    //! feature first.

    use core::arch::x86_64::*;

    use crate::sha256::{BLOCK_LEN, K};

    /// Big-endian message word `t` of `block`, as the `i32` the packed
    /// setters want.
    #[inline]
    fn word(block: &[u8; BLOCK_LEN], t: usize) -> i32 {
        u32::from_be_bytes([
            block[4 * t],
            block[4 * t + 1],
            block[4 * t + 2],
            block[4 * t + 3],
        ]) as i32
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn rotr4<const R: i32, const L: i32>(v: __m128i) -> __m128i {
        _mm_or_si128(_mm_srli_epi32::<R>(v), _mm_slli_epi32::<L>(v))
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn xor3_4(a: __m128i, b: __m128i, c: __m128i) -> __m128i {
        _mm_xor_si128(_mm_xor_si128(a, b), c)
    }

    /// Four-lane SHA-256 compression (SSE2).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn compress4(states: &mut [[u32; 8]], blocks: &[[u8; BLOCK_LEN]]) {
        debug_assert_eq!(states.len(), 4);
        debug_assert_eq!(blocks.len(), 4);

        let mut w = [_mm_setzero_si128(); 64];
        for (t, wt) in w.iter_mut().enumerate().take(16) {
            *wt = _mm_set_epi32(
                word(&blocks[3], t),
                word(&blocks[2], t),
                word(&blocks[1], t),
                word(&blocks[0], t),
            );
        }
        for t in 16..64 {
            let x = w[t - 15];
            let s0 = xor3_4(
                rotr4::<7, 25>(x),
                rotr4::<18, 14>(x),
                _mm_srli_epi32::<3>(x),
            );
            let y = w[t - 2];
            let s1 = xor3_4(
                rotr4::<17, 15>(y),
                rotr4::<19, 13>(y),
                _mm_srli_epi32::<10>(y),
            );
            w[t] = _mm_add_epi32(_mm_add_epi32(w[t - 16], s0), _mm_add_epi32(w[t - 7], s1));
        }

        let mut v = [_mm_setzero_si128(); 8];
        for j in 0..8 {
            v[j] = _mm_set_epi32(
                states[3][j] as i32,
                states[2][j] as i32,
                states[1][j] as i32,
                states[0][j] as i32,
            );
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = v;
        for (t, wt) in w.iter().enumerate() {
            let big_s1 = xor3_4(rotr4::<6, 26>(e), rotr4::<11, 21>(e), rotr4::<25, 7>(e));
            // ch(e,f,g) = (e & f) ^ (!e & g) = g ^ (e & (f ^ g)).
            let ch = _mm_xor_si128(g, _mm_and_si128(e, _mm_xor_si128(f, g)));
            let t1 = _mm_add_epi32(
                _mm_add_epi32(h, big_s1),
                _mm_add_epi32(ch, _mm_add_epi32(_mm_set1_epi32(K[t] as i32), *wt)),
            );
            let big_s0 = xor3_4(rotr4::<2, 30>(a), rotr4::<13, 19>(a), rotr4::<22, 10>(a));
            // maj(a,b,c) = (a & b) | (c & (a | b)).
            let maj = _mm_or_si128(_mm_and_si128(a, b), _mm_and_si128(c, _mm_or_si128(a, b)));
            let t2 = _mm_add_epi32(big_s0, maj);
            h = g;
            g = f;
            f = e;
            e = _mm_add_epi32(d, t1);
            d = c;
            c = b;
            b = a;
            a = _mm_add_epi32(t1, t2);
        }

        let sums = [a, b, c, d, e, f, g, h];
        for j in 0..8 {
            let mut out = [0u32; 4];
            _mm_storeu_si128(
                out.as_mut_ptr().cast::<__m128i>(),
                _mm_add_epi32(v[j], sums[j]),
            );
            for (lane, state) in states.iter_mut().enumerate() {
                state[j] = out[lane];
            }
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rotr8<const R: i32, const L: i32>(v: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_srli_epi32::<R>(v), _mm256_slli_epi32::<L>(v))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn xor3_8(a: __m256i, b: __m256i, c: __m256i) -> __m256i {
        _mm256_xor_si256(_mm256_xor_si256(a, b), c)
    }

    /// Eight-lane SHA-256 compression (AVX2).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn compress8(states: &mut [[u32; 8]], blocks: &[[u8; BLOCK_LEN]]) {
        debug_assert_eq!(states.len(), 8);
        debug_assert_eq!(blocks.len(), 8);

        let mut w = [_mm256_setzero_si256(); 64];
        for (t, wt) in w.iter_mut().enumerate().take(16) {
            *wt = _mm256_set_epi32(
                word(&blocks[7], t),
                word(&blocks[6], t),
                word(&blocks[5], t),
                word(&blocks[4], t),
                word(&blocks[3], t),
                word(&blocks[2], t),
                word(&blocks[1], t),
                word(&blocks[0], t),
            );
        }
        for t in 16..64 {
            let x = w[t - 15];
            let s0 = xor3_8(
                rotr8::<7, 25>(x),
                rotr8::<18, 14>(x),
                _mm256_srli_epi32::<3>(x),
            );
            let y = w[t - 2];
            let s1 = xor3_8(
                rotr8::<17, 15>(y),
                rotr8::<19, 13>(y),
                _mm256_srli_epi32::<10>(y),
            );
            w[t] = _mm256_add_epi32(
                _mm256_add_epi32(w[t - 16], s0),
                _mm256_add_epi32(w[t - 7], s1),
            );
        }

        let mut v = [_mm256_setzero_si256(); 8];
        for j in 0..8 {
            v[j] = _mm256_set_epi32(
                states[7][j] as i32,
                states[6][j] as i32,
                states[5][j] as i32,
                states[4][j] as i32,
                states[3][j] as i32,
                states[2][j] as i32,
                states[1][j] as i32,
                states[0][j] as i32,
            );
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = v;
        for (t, wt) in w.iter().enumerate() {
            let big_s1 = xor3_8(rotr8::<6, 26>(e), rotr8::<11, 21>(e), rotr8::<25, 7>(e));
            let ch = _mm256_xor_si256(g, _mm256_and_si256(e, _mm256_xor_si256(f, g)));
            let t1 = _mm256_add_epi32(
                _mm256_add_epi32(h, big_s1),
                _mm256_add_epi32(ch, _mm256_add_epi32(_mm256_set1_epi32(K[t] as i32), *wt)),
            );
            let big_s0 = xor3_8(rotr8::<2, 30>(a), rotr8::<13, 19>(a), rotr8::<22, 10>(a));
            let maj = _mm256_or_si256(
                _mm256_and_si256(a, b),
                _mm256_and_si256(c, _mm256_or_si256(a, b)),
            );
            let t2 = _mm256_add_epi32(big_s0, maj);
            h = g;
            g = f;
            f = e;
            e = _mm256_add_epi32(d, t1);
            d = c;
            c = b;
            b = a;
            a = _mm256_add_epi32(t1, t2);
        }

        let sums = [a, b, c, d, e, f, g, h];
        for j in 0..8 {
            let mut out = [0u32; 8];
            _mm256_storeu_si256(
                out.as_mut_ptr().cast::<__m256i>(),
                _mm256_add_epi32(v[j], sums[j]),
            );
            for (lane, state) in states.iter_mut().enumerate() {
                state[j] = out[lane];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{digest, digest_from_midstate};

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn scalar_is_always_supported_and_detected_is_last() {
        let widths = supported();
        assert_eq!(widths[0], LaneWidth::Scalar);
        assert_eq!(detected(), *widths.last().unwrap());
        assert!(widths.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
    }

    #[test]
    fn lane_counts() {
        assert_eq!(LaneWidth::Scalar.lanes(), 1);
        assert_eq!(LaneWidth::W4.lanes(), 4);
        assert_eq!(LaneWidth::W8.lanes(), 8);
        assert_eq!(LaneWidth::W4.to_string(), "x4");
    }

    #[test]
    fn every_width_matches_the_scalar_compression() {
        // 17 lanes exercises 8-chunk + 4-chunk + scalar-tail dispatch.
        let n = 17;
        let states: Vec<[u32; 8]> = (0..n)
            .map(|i| {
                let mut s = INITIAL_STATE;
                s[0] ^= i as u32;
                s
            })
            .collect();
        let blocks: Vec<[u8; BLOCK_LEN]> = (0..n)
            .map(|i| {
                let mut b = [0u8; BLOCK_LEN];
                for (j, byte) in b.iter_mut().enumerate() {
                    *byte = (i * 131 + j) as u8;
                }
                b
            })
            .collect();
        let reference: Vec<[u32; 8]> = states
            .iter()
            .zip(blocks.iter())
            .map(|(s, b)| Sha256::compress_from(s, b))
            .collect();
        for width in supported() {
            let mut got = states.clone();
            compress_many_with(*width, &mut got, &blocks);
            assert_eq!(got, reference, "width {width}");
        }
    }

    #[test]
    fn digest_many_matches_scalar_on_ragged_batches() {
        let messages: Vec<Vec<u8>> = (0..13usize)
            .map(|i| (0..i * 23).map(|j| (j % 251) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let got = digest_many(&refs);
        for (i, msg) in messages.iter().enumerate() {
            assert_eq!(got[i], digest(msg), "lane {i}");
        }
        assert!(digest_many(&[]).is_empty());
    }

    #[test]
    fn digest_many_fips_vectors() {
        let out = digest_many(&[
            b"abc".as_slice(),
            b"".as_slice(),
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq".as_slice(),
        ]);
        assert_eq!(
            hex(&out[0]),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&out[1]),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&out[2]),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn midstate_batches_match_the_scalar_midstate_path() {
        let prefix = [0x36u8; BLOCK_LEN];
        let mid = Sha256::compress_from(&INITIAL_STATE, &prefix);
        let tails: Vec<Vec<u8>> = (0..9usize)
            .map(|i| (0..i * 31).map(|j| (i * 7 + j) as u8).collect())
            .collect();
        let tail_refs: Vec<&[u8]> = tails.iter().map(Vec::as_slice).collect();
        let states = vec![mid; tails.len()];
        let got = digest_many_from_midstates(&states, BLOCK_LEN as u64, &tail_refs);
        for (i, tail) in tails.iter().enumerate() {
            assert_eq!(
                got[i],
                digest_from_midstate(&mid, BLOCK_LEN as u64, tail),
                "lane {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one block per lane")]
    fn compress_many_rejects_mismatched_lengths() {
        let mut states = [INITIAL_STATE; 2];
        compress_many(&mut states, &[[0u8; BLOCK_LEN]]);
    }

    #[test]
    #[should_panic(expected = "block boundaries")]
    fn midstate_batch_rejects_unaligned_prior_bytes() {
        let _ = digest_many_from_midstates(&[INITIAL_STATE], 10, &[b"x".as_slice()]);
    }
}
