//! Minimal randomness abstractions for a zero-dependency workspace.
//!
//! The workspace builds hermetically, so there is no `rand` crate to
//! agree on. Everything that needs random bytes (key sampling, forged
//! MACs in tests, the simulator's loss processes) speaks one of two tiny
//! traits instead:
//!
//! * [`FillBytes`] — "fill this slice with uniform bytes";
//! * [`UniformF64`] — "give me a uniform draw from `[0, 1)`".
//!
//! `dap-simnet`'s `SimRng` implements both; this crate additionally
//! ships [`SplitMix64`], a tiny self-contained generator used by unit
//! tests and as the seeding function for larger generators downstream.

/// A source of uniformly random bytes.
pub trait FillBytes {
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A source of uniform floating-point draws.
pub trait UniformF64 {
    /// A uniform draw from `[0, 1)`.
    fn unit_f64(&mut self) -> f64;
}

/// The SplitMix64 mixing function: maps a counter to a well-distributed
/// 64-bit value (Steele, Lea, Flood — OOPSLA 2014).
///
/// Public because it doubles as the workspace's standard way to derive
/// seeds: `dap-simnet` seeds its xoshiro256++ state from four successive
/// SplitMix64 outputs, as the xoshiro authors recommend.
#[must_use]
pub const fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A self-contained SplitMix64 generator.
///
/// Small state, full 2^64 period, passes BigCrush — more than enough for
/// sampling test keys and forged tags. Not a CSPRNG; nothing in this
/// workspace needs one (all "secrets" are simulation inputs).
///
/// ```
/// use dap_crypto::rng::{FillBytes, SplitMix64};
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// let mut x = [0u8; 16];
/// let mut y = [0u8; 16];
/// a.fill_bytes(&mut x);
/// b.fill_bytes(&mut y);
/// assert_eq!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl FillBytes for SplitMix64 {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl UniformF64 for SplitMix64 {
    fn unit_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 (reference implementation,
        // Vigna's splitmix64.c).
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(g.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn fn_and_generator_agree() {
        let mut g = SplitMix64::new(42);
        assert_eq!(g.next_u64(), splitmix64(42));
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut g = SplitMix64::new(9);
        let mut buf = [0u8; 13];
        g.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        // Deterministic.
        let mut h = SplitMix64::new(9);
        let mut buf2 = [0u8; 13];
        h.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut g = SplitMix64::new(3);
        for _ in 0..1000 {
            let u = g.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
