//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! The workspace is self-contained by design: every protocol in the paper
//! is parameterised over "a one-way hash function", and this module
//! provides the concrete instance. Correctness is pinned by the official
//! NIST test vectors in the unit tests.

/// Digest size in bytes (256 bits).
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes (512 bits).
pub const BLOCK_LEN: usize = 64;

/// The FIPS 180-4 initial hash state (`H(0)`), exposed so midstate
/// caches can restart compression from the canonical origin.
pub const INITIAL_STATE: [u32; 8] = H0;

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

pub(crate) const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Incremental (streaming) SHA-256 state.
///
/// ```
/// use dap_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), dap_crypto::sha256::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    /// Total message length in bytes processed so far.
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sha256")
            .field("length", &self.length)
            .field("buffered", &self.buffered)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the FIPS 180-4 initial state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut rest = data;

        // Fill a partially buffered block first.
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(rest.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }

        // Whole blocks straight from the input.
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }

        // Stash the remainder.
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.length.wrapping_mul(8);

        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        let pad_len = if self.buffered < 56 {
            56 - self.buffered
        } else {
            BLOCK_LEN + 56 - self.buffered
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_padding(&pad[..pad_len + 8]);

        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// `update` without advancing `length` (padding is not message data).
    fn update_padding(&mut self, data: &[u8]) {
        let saved = self.length;
        self.update(data);
        self.length = saved;
    }

    /// Resumes hashing from a compressed `state` captured at a 64-byte
    /// block boundary, with `bytes_processed` bytes already absorbed.
    ///
    /// This is the streaming entry point for midstate caching: a keyed
    /// prefix (e.g. an HMAC pad block) is compressed once, and every
    /// subsequent message restarts from the cached state instead of
    /// re-hashing the prefix.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_processed` is not a multiple of [`BLOCK_LEN`]
    /// (mid-block states are not capturable).
    #[must_use]
    pub fn from_midstate(state: [u32; 8], bytes_processed: u64) -> Self {
        assert!(
            bytes_processed.is_multiple_of(BLOCK_LEN as u64),
            "midstates exist only at block boundaries"
        );
        Self {
            state,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            length: bytes_processed,
        }
    }

    /// The current compressed state, or `None` when input is buffered
    /// mid-block (a midstate only exists at 64-byte boundaries).
    #[must_use]
    pub fn midstate(&self) -> Option<[u32; 8]> {
        (self.buffered == 0).then_some(self.state)
    }

    /// Applies the SHA-256 compression function to `state` for one
    /// 64-byte `block` — the pure fast path behind midstate caching.
    #[must_use]
    pub fn compress_from(state: &[u32; 8], block: &[u8; BLOCK_LEN]) -> [u32; 8] {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        [
            state[0].wrapping_add(a),
            state[1].wrapping_add(b),
            state[2].wrapping_add(c),
            state[3].wrapping_add(d),
            state[4].wrapping_add(e),
            state[5].wrapping_add(f),
            state[6].wrapping_add(g),
            state[7].wrapping_add(h),
        ]
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        self.state = Self::compress_from(&self.state, block);
    }
}

/// One-shot digest resuming from a cached midstate: hashes the message
/// `prefix ‖ tail` where `prefix` is the (already compressed) first
/// `prior_bytes` bytes whose state is `state`.
///
/// Unlike the incremental [`Sha256`], this path never copies through the
/// 64-byte staging buffer: whole blocks compress straight from `tail`,
/// and the final one or two padded blocks are assembled on the stack.
/// For the hot MAC shapes in this workspace (`tail` ≤ 55 bytes) that is
/// exactly **one** compression call.
///
/// # Panics
///
/// Panics if `prior_bytes` is not a multiple of [`BLOCK_LEN`].
#[must_use]
pub fn digest_from_midstate(state: &[u32; 8], prior_bytes: u64, tail: &[u8]) -> [u8; DIGEST_LEN] {
    assert!(
        prior_bytes.is_multiple_of(BLOCK_LEN as u64),
        "midstates exist only at block boundaries"
    );
    let mut st = *state;
    let mut chunks = tail.chunks_exact(BLOCK_LEN);
    for block in &mut chunks {
        st = Sha256::compress_from(&st, block.try_into().expect("exact chunk"));
    }
    let rest = chunks.remainder();

    let bit_len = prior_bytes.wrapping_add(tail.len() as u64).wrapping_mul(8);
    let mut block = [0u8; BLOCK_LEN];
    block[..rest.len()].copy_from_slice(rest);
    block[rest.len()] = 0x80;
    if rest.len() < 56 {
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        st = Sha256::compress_from(&st, &block);
    } else {
        st = Sha256::compress_from(&st, &block);
        let mut last = [0u8; BLOCK_LEN];
        last[56..].copy_from_slice(&bit_len.to_be_bytes());
        st = Sha256::compress_from(&st, &last);
    }

    let mut out = [0u8; DIGEST_LEN];
    for (chunk, word) in out.chunks_exact_mut(4).zip(st.iter()) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One-shot SHA-256 of `data`.
///
/// ```
/// let d = dap_crypto::sha256::digest(b"abc");
/// assert_eq!(d[0], 0xba);
/// ```
#[must_use]
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let want = digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn length_extension_state_differs_from_fresh() {
        // Sanity: hashing "a" then "b" equals hashing "ab" (API-level check
        // that buffering does not duplicate or drop bytes).
        let mut h = Sha256::new();
        h.update(b"a");
        h.update(b"b");
        assert_eq!(h.finalize(), digest(b"ab"));
    }

    #[test]
    fn exact_block_boundary_inputs() {
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0xa5u8; len];
            let mut h = Sha256::new();
            h.update(&data);
            // Compare against a byte-at-a-time stream.
            let mut g = Sha256::new();
            for b in &data {
                g.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), g.finalize(), "len {len}");
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let h = Sha256::new();
        assert!(!format!("{h:?}").is_empty());
    }

    #[test]
    fn digest_from_midstate_matches_incremental_at_every_tail_length() {
        // Prefix = one full block; tails cross both padding regimes
        // (< 56 → one final block, ≥ 56 → two) and whole-block runs.
        let prefix = [0x36u8; BLOCK_LEN];
        let mid = {
            let mut h = Sha256::new();
            h.update(&prefix);
            h.midstate().expect("block boundary")
        };
        for tail_len in 0..200usize {
            let tail: Vec<u8> = (0..tail_len).map(|i| (i % 251) as u8).collect();
            let fast = digest_from_midstate(&mid, BLOCK_LEN as u64, &tail);
            let mut slow = Sha256::new();
            slow.update(&prefix);
            slow.update(&tail);
            assert_eq!(fast, slow.finalize(), "tail_len {tail_len}");
        }
    }

    #[test]
    fn digest_from_midstate_from_origin_equals_digest() {
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 200] {
            let data = vec![0x5cu8; len];
            assert_eq!(
                digest_from_midstate(&INITIAL_STATE, 0, &data),
                digest(&data),
                "len {len}"
            );
        }
    }

    #[test]
    fn from_midstate_resumes_streaming() {
        let mut a = Sha256::new();
        a.update(&[7u8; 64]);
        let mid = a.midstate().unwrap();
        let mut b = Sha256::from_midstate(mid, 64);
        a.update(b"suffix");
        b.update(b"suffix");
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn midstate_is_none_mid_block() {
        let mut h = Sha256::new();
        h.update(b"partial");
        assert!(h.midstate().is_none());
    }

    #[test]
    #[should_panic(expected = "block boundaries")]
    fn from_midstate_rejects_unaligned_length() {
        let _ = Sha256::from_midstate(INITIAL_STATE, 10);
    }

    #[test]
    fn compress_from_is_pure() {
        let block = [0xabu8; BLOCK_LEN];
        let a = Sha256::compress_from(&INITIAL_STATE, &block);
        let b = Sha256::compress_from(&INITIAL_STATE, &block);
        assert_eq!(a, b);
        assert_ne!(a, INITIAL_STATE);
    }
}
