//! One-way key chains with delayed disclosure — the heart of every TESLA
//! variant.
//!
//! A sender draws a random `K_n` and derives `K_i = F(K_{i+1})` down to the
//! *commitment* `K_0`, which is distributed to receivers out of band (in
//! the protocols, during bootstrapping). Keys are then *used* in increasing
//! index order and *disclosed* `d` intervals later. A receiver who trusts
//! `K_j` verifies any later disclosure `K_i` (`i > j`) by checking
//! `F^{i-j}(K_i) == K_j`, which also recovers from lost disclosures.

use crate::error::ChainVerifyError;
use crate::hmac::hmac_sha256;
use crate::oneway::{one_way, one_way_iter, one_way_trace, Domain};

/// Label deriving a chain head from a seed — shared by every
/// [`ChainStore`] implementation so they agree key-for-key.
pub(crate) const CHAIN_HEAD_LABEL: &[u8] = b"crowdsense-dap/chain-head";

/// An 80-bit symmetric key, the size the paper uses on the wire
/// (`Ki (80b)` in Fig. 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key([u8; Key::LEN]);

impl Key {
    /// Key length in bytes (80 bits).
    pub const LEN: usize = 10;
    /// Key length in bits, as counted in the paper's memory budget.
    pub const BITS: u32 = 80;

    /// Builds a key from exactly [`Key::LEN`] bytes; returns `None` on any
    /// other length.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        bytes.try_into().ok().map(Key)
    }

    /// Derives a key from arbitrary seed material (not on any chain).
    ///
    /// Used for receiver-local secrets such as `K_recv` in DAP and for
    /// turning a seed into the head of a chain.
    #[must_use]
    pub fn derive(label: &[u8], seed: &[u8]) -> Self {
        let tag = hmac_sha256(label, seed);
        Key::from_slice(&tag[..Key::LEN]).expect("digest longer than key")
    }

    /// Samples a uniformly random key.
    #[must_use]
    pub fn random<R: crate::rng::FillBytes + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; Key::LEN];
        rng.fill_bytes(&mut bytes[..]);
        Key(bytes)
    }

    /// The raw key bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key({self})")
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Sender-side storage for a one-way key chain.
///
/// Abstracts over *how* the keys `K_0 ..= K_len` are held: the fully
/// materialised [`KeyChain`] (O(n) memory, O(1) lookup) and the
/// Jakobsson-pebbled [`crate::PebbledChain`] (O(log n) memory, amortized
/// O(log n) one-way applications per sequential lookup) both implement
/// it, so senders pick their memory/latency trade-off without touching
/// protocol code. Implementations must agree key-for-key for the same
/// `(seed, len, domain)` — pinned by the `dap-testkit` property suite.
// No `is_empty`: zero-length chains are unconstructible (generation
// panics), so every store holds at least one usable key.
#[allow(clippy::len_without_is_empty)]
pub trait ChainStore: std::fmt::Debug + Clone {
    /// `K_i` by value, or `None` when `i` is past the end of the chain.
    /// May amortise internal recomputation, hence `&self` with interior
    /// mutability in pebbled implementations.
    fn key(&self, i: usize) -> Option<Key>;

    /// The commitment `K_0`.
    fn commitment(&self) -> Key;

    /// Number of usable keys (`K_1 ..= K_len`).
    fn len(&self) -> usize;

    /// The one-way function domain of this chain.
    fn domain(&self) -> Domain;

    /// A receiver-side anchor bootstrapped from the commitment.
    fn anchor(&self) -> ChainAnchor {
        ChainAnchor::new(self.commitment(), 0, self.domain())
    }
}

/// A full one-way key chain, held by the **sender**.
///
/// `keys[i]` is `K_i`; `keys[0]` is the commitment distributed to
/// receivers. Interval `i` (1-based) authenticates with `K_i`.
///
/// ```
/// use dap_crypto::{KeyChain, Domain, oneway::one_way};
///
/// let chain = KeyChain::generate(b"seed", 8, Domain::F);
/// // Chain property: K_i = F(K_{i+1}).
/// let k3 = chain.key(3).unwrap();
/// let k4 = chain.key(4).unwrap();
/// assert_eq!(*k3, one_way(Domain::F, k4));
/// ```
#[derive(Debug, Clone)]
pub struct KeyChain {
    keys: Vec<Key>,
    domain: Domain,
}

impl KeyChain {
    /// Generates a chain with keys `K_0 ..= K_len` from `seed`.
    ///
    /// `K_len` is derived from the seed; every earlier key follows by
    /// applying the domain's one-way function. The same `(seed, len,
    /// domain)` always yields the same chain, which keeps simulations
    /// reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`; a chain needs at least one usable key.
    #[must_use]
    pub fn generate(seed: &[u8], len: usize, domain: Domain) -> Self {
        assert!(len > 0, "key chain must have at least one usable key");
        let head = Key::derive(CHAIN_HEAD_LABEL, seed);
        Self::from_head(head, len, domain)
    }

    /// Generates many chains at once, one per seed — key-for-key equal
    /// to calling [`KeyChain::generate`] on each seed, but walking all
    /// chains *level by level* so every `F` application at a given
    /// depth runs through [`one_way_many`]'s lane-parallel SHA-256.
    /// This is the fleet bootstrap path: provisioning `n` senders costs
    /// `n · len` compressions either way, but the batched walk keeps
    /// the SIMD lanes full instead of hashing one 10-byte key at a
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` and `seeds` is non-empty.
    ///
    /// [`one_way_many`]: crate::oneway::one_way_many
    #[must_use]
    pub fn generate_many(seeds: &[&[u8]], len: usize, domain: Domain) -> Vec<Self> {
        if seeds.is_empty() {
            return Vec::new();
        }
        assert!(len > 0, "key chain must have at least one usable key");
        let mut level: Vec<Key> = seeds
            .iter()
            .map(|seed| Key::derive(CHAIN_HEAD_LABEL, seed))
            .collect();
        let mut chains: Vec<Vec<Key>> = seeds.iter().map(|_| vec![level[0]; len + 1]).collect();
        for (chain, head) in chains.iter_mut().zip(&level) {
            chain[len] = *head;
        }
        for i in (0..len).rev() {
            level = crate::oneway::one_way_many(domain, &level);
            for (chain, key) in chains.iter_mut().zip(&level) {
                chain[i] = *key;
            }
        }
        chains
            .into_iter()
            .map(|keys| Self { keys, domain })
            .collect()
    }

    /// Generates a chain whose last key `K_len` is exactly `head`.
    ///
    /// Multi-level μTESLA uses this to tie a low-level chain to the
    /// high-level chain: `K_{i,n} = F01(K_i)` makes the low-level head a
    /// *deterministic image* of a high-level key.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn from_head(head: Key, len: usize, domain: Domain) -> Self {
        assert!(len > 0, "key chain must have at least one usable key");
        let mut keys = vec![head; len + 1];
        for i in (0..len).rev() {
            keys[i] = one_way(domain, &keys[i + 1]);
        }
        Self { keys, domain }
    }

    /// `K_i`, or `None` when `i` is past the end of the chain.
    #[must_use]
    pub fn key(&self, i: usize) -> Option<&Key> {
        self.keys.get(i)
    }

    /// The commitment `K_0`.
    #[must_use]
    pub fn commitment(&self) -> &Key {
        &self.keys[0]
    }

    /// Number of *usable* keys (`K_1 ..= K_len`), i.e. the `len` passed at
    /// generation time. Always at least 1: generation rejects empty
    /// chains, so there is deliberately no `is_empty` — it could never
    /// return `true`.
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.keys.len() - 1
    }

    /// The one-way function domain this chain uses.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// A receiver-side anchor bootstrapped from the commitment.
    #[must_use]
    pub fn anchor(&self) -> ChainAnchor {
        ChainAnchor::new(*self.commitment(), 0, self.domain)
    }
}

impl ChainStore for KeyChain {
    fn key(&self, i: usize) -> Option<Key> {
        KeyChain::key(self, i).copied()
    }

    fn commitment(&self) -> Key {
        *KeyChain::commitment(self)
    }

    fn len(&self) -> usize {
        KeyChain::len(self)
    }

    fn domain(&self) -> Domain {
        KeyChain::domain(self)
    }
}

/// The **receiver** side of a key chain: the most recent authenticated key
/// plus its index.
///
/// Verifying a disclosure `(K_i, i)` walks the one-way function `i - j`
/// times and compares against the anchored `K_j`; on success the anchor
/// advances, so later verifications get cheaper and the chain can never be
/// rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainAnchor {
    key: Key,
    index: u64,
    domain: Domain,
    max_steps: u64,
}

impl ChainAnchor {
    /// Default bound on recovery steps per verification. Bounds the CPU an
    /// attacker can burn by claiming an enormous index.
    pub const DEFAULT_MAX_STEPS: u64 = 4096;

    /// Creates an anchor trusting `key` at `index`.
    #[must_use]
    pub fn new(key: Key, index: u64, domain: Domain) -> Self {
        Self {
            key,
            index,
            domain,
            max_steps: Self::DEFAULT_MAX_STEPS,
        }
    }

    /// Replaces the recovery-step bound (see [`ChainVerifyError::TooFarAhead`]).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// The currently trusted key.
    #[must_use]
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// The index of the currently trusted key.
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Checks that `candidate` is the chain key for `claimed_index`
    /// without mutating the anchor. Returns the number of one-way steps
    /// used.
    ///
    /// # Errors
    ///
    /// * [`ChainVerifyError::NotAhead`] — `claimed_index <=` anchor index.
    /// * [`ChainVerifyError::TooFarAhead`] — gap exceeds the step bound.
    /// * [`ChainVerifyError::Mismatch`] — the candidate is not on the chain.
    pub fn verify(&self, candidate: &Key, claimed_index: u64) -> Result<u64, ChainVerifyError> {
        if claimed_index <= self.index {
            return Err(ChainVerifyError::NotAhead {
                anchor_index: self.index,
                claimed_index,
            });
        }
        let steps = claimed_index - self.index;
        if steps > self.max_steps {
            return Err(ChainVerifyError::TooFarAhead {
                steps,
                max_steps: self.max_steps,
            });
        }
        let image = one_way_iter(self.domain, candidate, steps as usize);
        if crate::ct_eq(image.as_bytes(), self.key.as_bytes()) {
            Ok(steps)
        } else {
            Err(ChainVerifyError::Mismatch)
        }
    }

    /// [`verify`](Self::verify), then advance the anchor to the verified
    /// key on success.
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify); the anchor is unchanged on error.
    pub fn accept(&mut self, candidate: &Key, claimed_index: u64) -> Result<u64, ChainVerifyError> {
        let steps = self.verify(candidate, claimed_index)?;
        self.key = *candidate;
        self.index = claimed_index;
        Ok(steps)
    }

    /// [`accept`](Self::accept), additionally returning every chain key
    /// recovered while walking the gap: element `j` of the result is the
    /// key for interval `old_anchor_index + 1 + j`, the last element
    /// being the accepted candidate itself.
    ///
    /// The verification walk computes these intermediates anyway;
    /// returning them lets receivers catching up after a blackout cache
    /// the segment instead of re-walking it for every duplicate reveal
    /// inside the gap.
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify); the anchor is unchanged on error.
    pub fn accept_recovering(
        &mut self,
        candidate: &Key,
        claimed_index: u64,
    ) -> Result<Vec<Key>, ChainVerifyError> {
        if claimed_index <= self.index {
            return Err(ChainVerifyError::NotAhead {
                anchor_index: self.index,
                claimed_index,
            });
        }
        let steps = claimed_index - self.index;
        if steps > self.max_steps {
            return Err(ChainVerifyError::TooFarAhead {
                steps,
                max_steps: self.max_steps,
            });
        }
        // trace[t] = F^{t+1}(candidate) = key for claimed_index - 1 - t.
        let mut trace = one_way_trace(self.domain, candidate, steps as usize);
        let image = trace.last().expect("steps >= 1");
        if !crate::ct_eq(image.as_bytes(), self.key.as_bytes()) {
            return Err(ChainVerifyError::Mismatch);
        }
        // Drop F^steps (the already-anchored key), reorder ascending and
        // append the candidate: indices old+1 ..= claimed_index.
        trace.pop();
        trace.reverse();
        trace.push(*candidate);
        self.key = *candidate;
        self.index = claimed_index;
        Ok(trace)
    }

    /// [`accept_recovering`](Self::accept_recovering) with the first
    /// one-way image of `candidate` already computed — typically by a
    /// lane-parallel batch ([`crate::lanes`]) amortising the hash across
    /// a whole drain window.
    ///
    /// When `claimed_index` is exactly one step ahead (the steady-state
    /// disclosure path), `first_image` answers the walk with zero fresh
    /// compressions; every other shape defers to
    /// [`accept_recovering`](Self::accept_recovering), so results are
    /// bit-identical to the unassisted call.
    ///
    /// `first_image` **must** equal `one_way(domain, candidate)`; a
    /// wrong image would corrupt the anchor. Debug builds assert it.
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify); the anchor is unchanged on error.
    pub fn accept_recovering_with_image(
        &mut self,
        candidate: &Key,
        claimed_index: u64,
        first_image: &Key,
    ) -> Result<Vec<Key>, ChainVerifyError> {
        debug_assert_eq!(
            *first_image,
            one_way(self.domain, candidate),
            "first_image must be the candidate's one-way image"
        );
        if claimed_index == self.index + 1 {
            if self.max_steps < 1 {
                return Err(ChainVerifyError::TooFarAhead {
                    steps: 1,
                    max_steps: self.max_steps,
                });
            }
            if !crate::ct_eq(first_image.as_bytes(), self.key.as_bytes()) {
                return Err(ChainVerifyError::Mismatch);
            }
            self.key = *candidate;
            self.index = claimed_index;
            return Ok(vec![*candidate]);
        }
        self.accept_recovering(candidate, claimed_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn chain_property_holds_everywhere() {
        let chain = KeyChain::generate(b"s", 32, Domain::F);
        for i in 0..32 {
            assert_eq!(
                *chain.key(i).unwrap(),
                one_way(Domain::F, chain.key(i + 1).unwrap())
            );
        }
    }

    #[test]
    fn generate_is_deterministic_and_seed_sensitive() {
        let a = KeyChain::generate(b"seed-a", 10, Domain::F);
        let b = KeyChain::generate(b"seed-a", 10, Domain::F);
        let c = KeyChain::generate(b"seed-b", 10, Domain::F);
        assert_eq!(a.commitment(), b.commitment());
        assert_ne!(a.commitment(), c.commitment());
    }

    #[test]
    fn generate_many_matches_per_seed_generate_key_for_key() {
        let seeds: Vec<Vec<u8>> = (0u64..17).map(|i| i.to_be_bytes().to_vec()).collect();
        let refs: Vec<&[u8]> = seeds.iter().map(Vec::as_slice).collect();
        let batched = KeyChain::generate_many(&refs, 23, Domain::F);
        assert_eq!(batched.len(), seeds.len());
        for (seed, chain) in seeds.iter().zip(&batched) {
            let scalar = KeyChain::generate(seed, 23, Domain::F);
            for i in 0..=23 {
                assert_eq!(chain.key(i), scalar.key(i), "seed {seed:?} key {i}");
            }
        }
        assert!(KeyChain::generate_many(&[], 23, Domain::F).is_empty());
    }

    #[test]
    fn from_head_pins_last_key() {
        let head = Key::derive(b"t", b"head");
        let chain = KeyChain::from_head(head, 5, Domain::F1);
        assert_eq!(*chain.key(5).unwrap(), head);
        assert_eq!(chain.len(), 5);
    }

    #[test]
    fn accept_recovering_returns_the_gap_segment() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        let mut anchor = chain.anchor();
        anchor.accept(chain.key(2).unwrap(), 2).unwrap();
        // Disclosures 3..=6 lost; 7 arrives and recovers the segment.
        let recovered = anchor.accept_recovering(chain.key(7).unwrap(), 7).unwrap();
        assert_eq!(recovered.len(), 5);
        for (j, key) in recovered.iter().enumerate() {
            assert_eq!(key, chain.key(3 + j).unwrap(), "index {}", 3 + j);
        }
        assert_eq!(anchor.index(), 7);
        assert_eq!(anchor.key(), chain.key(7).unwrap());
    }

    #[test]
    fn accept_recovering_rejects_like_accept() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        let mut anchor = chain.anchor();
        let mut rng = SplitMix64::new(5);
        assert_eq!(
            anchor.accept_recovering(&Key::random(&mut rng), 3),
            Err(ChainVerifyError::Mismatch)
        );
        anchor.accept(chain.key(4).unwrap(), 4).unwrap();
        assert!(matches!(
            anchor.accept_recovering(chain.key(4).unwrap(), 4),
            Err(ChainVerifyError::NotAhead { .. })
        ));
        let bounded = anchor.clone().with_max_steps(2);
        assert!(matches!(
            bounded.clone().accept_recovering(chain.key(8).unwrap(), 8),
            Err(ChainVerifyError::TooFarAhead { .. })
        ));
    }

    #[test]
    fn accept_with_image_matches_unassisted_accept() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        // Steady state: image answers the one-step walk.
        let mut assisted = chain.anchor();
        let mut plain = chain.anchor();
        for i in 1..=4u64 {
            let key = chain.key(i as usize).unwrap();
            let image = one_way(Domain::F, key);
            assert_eq!(
                assisted.accept_recovering_with_image(key, i, &image),
                plain.accept_recovering(key, i),
                "interval {i}"
            );
            assert_eq!(assisted, plain);
        }
        // Gap: defers to the full walk, same segment.
        let key = chain.key(9).unwrap();
        let image = one_way(Domain::F, key);
        assert_eq!(
            assisted.accept_recovering_with_image(key, 9, &image),
            plain.accept_recovering(key, 9)
        );
        // Forged one-step candidate: rejected, anchor unchanged.
        let forged = Key::derive(b"forged", b"x");
        let forged_image = one_way(Domain::F, &forged);
        assert_eq!(
            assisted.accept_recovering_with_image(&forged, 10, &forged_image),
            Err(ChainVerifyError::Mismatch)
        );
        assert_eq!(assisted, plain);
        // A zero step budget rejects even the assisted fast path.
        let mut bounded = chain.anchor().with_max_steps(0);
        let k1 = chain.key(1).unwrap();
        assert!(matches!(
            bounded.accept_recovering_with_image(k1, 1, &one_way(Domain::F, k1)),
            Err(ChainVerifyError::TooFarAhead { .. })
        ));
    }

    #[test]
    fn chain_store_trait_matches_inherent_api() {
        let chain = KeyChain::generate(b"s", 8, Domain::F);
        let store: &dyn Fn(&KeyChain) -> usize = &|c| ChainStore::len(c);
        assert_eq!(store(&chain), 8);
        assert_eq!(ChainStore::commitment(&chain), *chain.commitment());
        assert_eq!(ChainStore::key(&chain, 3), chain.key(3).copied());
        assert_eq!(ChainStore::key(&chain, 9), None);
        assert_eq!(ChainStore::domain(&chain), Domain::F);
        assert_eq!(ChainStore::anchor(&chain), chain.anchor());
    }

    #[test]
    fn key_out_of_range_is_none() {
        let chain = KeyChain::generate(b"s", 4, Domain::F);
        assert!(chain.key(4).is_some());
        assert!(chain.key(5).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one usable key")]
    fn zero_length_chain_panics() {
        let _ = KeyChain::generate(b"s", 0, Domain::F);
    }

    #[test]
    fn anchor_accepts_in_order_disclosures() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        let mut anchor = chain.anchor();
        for i in 1..=16u64 {
            let steps = anchor.accept(chain.key(i as usize).unwrap(), i).unwrap();
            assert_eq!(steps, 1);
            assert_eq!(anchor.index(), i);
        }
    }

    #[test]
    fn anchor_recovers_over_gaps() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        let mut anchor = chain.anchor();
        // Disclosures for intervals 1..=4 all lost; interval 5 arrives.
        let steps = anchor.accept(chain.key(5).unwrap(), 5).unwrap();
        assert_eq!(steps, 5);
        assert_eq!(anchor.key(), chain.key(5).unwrap());
    }

    #[test]
    fn anchor_rejects_replay_and_rollback() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        let mut anchor = chain.anchor();
        anchor.accept(chain.key(8).unwrap(), 8).unwrap();
        assert_eq!(
            anchor.accept(chain.key(8).unwrap(), 8),
            Err(ChainVerifyError::NotAhead {
                anchor_index: 8,
                claimed_index: 8
            })
        );
        assert_eq!(
            anchor.accept(chain.key(3).unwrap(), 3),
            Err(ChainVerifyError::NotAhead {
                anchor_index: 8,
                claimed_index: 3
            })
        );
    }

    #[test]
    fn anchor_rejects_forged_key() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        let mut anchor = chain.anchor();
        let mut rng = SplitMix64::new(1);
        let forged = Key::random(&mut rng);
        assert_eq!(anchor.accept(&forged, 3), Err(ChainVerifyError::Mismatch));
        // Anchor unchanged after a failed accept.
        assert_eq!(anchor.index(), 0);
    }

    #[test]
    fn anchor_rejects_wrong_index_for_real_key() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        let anchor = chain.anchor();
        // K_5 claimed as index 6: F^6(K_5) != K_0.
        assert_eq!(
            anchor.verify(chain.key(5).unwrap(), 6),
            Err(ChainVerifyError::Mismatch)
        );
    }

    #[test]
    fn anchor_enforces_step_bound() {
        let chain = KeyChain::generate(b"s", 16, Domain::F);
        let anchor = chain.anchor().with_max_steps(4);
        assert_eq!(
            anchor.verify(chain.key(10).unwrap(), 10),
            Err(ChainVerifyError::TooFarAhead {
                steps: 10,
                max_steps: 4
            })
        );
    }

    #[test]
    fn anchor_domain_mismatch_rejects() {
        // A chain built with F0 must not verify against an F anchor even
        // with the same seed.
        let f_chain = KeyChain::generate(b"s", 8, Domain::F);
        let f0_chain = KeyChain::generate(b"s", 8, Domain::F0);
        let anchor = f_chain.anchor();
        assert_eq!(
            anchor.verify(f0_chain.key(1).unwrap(), 1),
            Err(ChainVerifyError::Mismatch)
        );
    }

    #[test]
    fn key_display_and_debug() {
        let key = Key::from_slice(&[0xab; 10]).unwrap();
        assert_eq!(key.to_string(), "abababababababababab");
        assert!(format!("{key:?}").starts_with("Key("));
    }

    #[test]
    fn key_from_slice_rejects_bad_lengths() {
        assert!(Key::from_slice(&[0u8; 9]).is_none());
        assert!(Key::from_slice(&[0u8; 11]).is_none());
        assert!(Key::from_slice(&[]).is_none());
    }

    #[test]
    fn random_keys_differ() {
        let mut rng = SplitMix64::new(7);
        assert_ne!(Key::random(&mut rng), Key::random(&mut rng));
    }

    #[test]
    fn byte_roundtrip() {
        let key = Key::derive(b"l", b"s");
        assert_eq!(Key::from_slice(key.as_bytes()), Some(key));
    }
}
