//! Jakobsson-style pebbled key chains: O(log n) memory, amortized
//! O(log n) one-way applications per sequential key.
//!
//! A [`crate::KeyChain`] materialises every key up front — fine for a
//! 400-interval figure run, fatal for the ROADMAP's million-interval
//! campaigns (10 MB of chain per sender, times a fleet). TESLA-family
//! deployments solve this with *pebbling* (Jakobsson 2002, "Fractal hash
//! sequence representation and traversal"): keep a logarithmic set of
//! checkpoint keys ("pebbles") along the chain and regenerate the rest
//! on demand, placing new pebbles at the midpoints of each walked
//! segment so future walks halve.
//!
//! This implementation uses the recursive-halving variant: serving key
//! `i` walks down from the nearest pebble above `i`, dropping pebbles at
//! the binary midpoints of the walked segment. For the sender's
//! sequential access pattern (`K_1, K_2, …, K_n`, with bounded
//! look-back for TESLA's `d`-delayed disclosure) this costs O(n log n)
//! total one-way applications — amortized O(log n) per interval — while
//! never holding more than O(log n) pebbles. Both bounds are pinned by
//! tests; equality with [`crate::KeyChain`] key-for-key is pinned by the
//! `dap-testkit` property suite.

use std::cell::RefCell;

use crate::keychain::{ChainAnchor, ChainStore, Key, CHAIN_HEAD_LABEL};
use crate::oneway::{one_way, Domain};

/// Pebbles at or below `served_index - LOOKBACK` are pruned. The window
/// covers repeated same-interval lookups (announce then reveal) and
/// TESLA's disclosure look-back (`key(i)` then `key(i - d)`); requests
/// further back stay correct but walk from a higher pebble.
const DEFAULT_LOOKBACK: usize = 16;

#[derive(Debug, Clone)]
struct PebbleState {
    /// `(index, key)` checkpoints, sorted ascending by index. The head
    /// `(len, K_len)` is always resident.
    pebbles: Vec<(usize, Key)>,
    /// Total one-way applications since construction (instrumentation).
    steps: u64,
    /// High-water mark of resident pebbles (instrumentation).
    max_pebbles: usize,
    lookback: usize,
}

impl PebbleState {
    /// Returns `K_i`, walking down from the nearest pebble at or above
    /// `i` and pebbling the binary midpoints of the walked segment.
    fn serve(&mut self, i: usize, domain: Domain) -> Key {
        let pos = self.pebbles.partition_point(|(idx, _)| *idx < i);
        let (mut cur_idx, mut cur) = self.pebbles[pos];
        if cur_idx == i {
            self.prune(i);
            return cur;
        }

        // Binary midpoints of (i, cur_idx), descending — the positions
        // that halve every future walk into this segment.
        let mut marks: Vec<usize> = Vec::new();
        let mut hi = cur_idx;
        while hi - i > 1 {
            let mid = i + (hi - i) / 2;
            marks.push(mid);
            hi = mid;
        }

        let mut fresh: Vec<(usize, Key)> = Vec::with_capacity(marks.len() + 1);
        let mut next_mark = marks.iter().copied().peekable();
        while cur_idx > i {
            cur = one_way(domain, &cur);
            cur_idx -= 1;
            self.steps += 1;
            if next_mark.peek() == Some(&cur_idx) {
                next_mark.next();
                fresh.push((cur_idx, cur));
            }
        }
        fresh.push((i, cur));
        // The walked segment (i, old cur_idx) held no pebbles, so the
        // fresh ones (descending) slot in contiguously before `pos`.
        fresh.reverse();
        self.pebbles.splice(pos..pos, fresh);
        self.max_pebbles = self.max_pebbles.max(self.pebbles.len());
        self.prune(i);
        cur
    }

    /// Drops pebbles strictly below the retention window of `i`.
    fn prune(&mut self, i: usize) {
        let floor = i.saturating_sub(self.lookback);
        self.pebbles.retain(|(idx, _)| *idx >= floor);
        self.max_pebbles = self.max_pebbles.max(self.pebbles.len());
    }
}

/// A sender-side key chain held as O(log n) pebbles.
///
/// Drop-in for [`crate::KeyChain`] behind the [`ChainStore`] trait:
/// same `(seed, len, domain)` → same keys, commitment and anchor.
///
/// ```
/// use dap_crypto::{ChainStore, Domain, KeyChain, PebbledChain};
///
/// let dense = KeyChain::generate(b"seed", 64, Domain::F);
/// let pebbled = PebbledChain::generate(b"seed", 64, Domain::F);
/// assert_eq!(pebbled.commitment(), *dense.commitment());
/// for i in 0..=64 {
///     assert_eq!(ChainStore::key(&pebbled, i), dense.key(i).copied());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PebbledChain {
    domain: Domain,
    len: usize,
    commitment: Key,
    state: RefCell<PebbleState>,
}

impl PebbledChain {
    /// Generates a pebbled chain with keys `K_0 ..= K_len` from `seed` —
    /// key-for-key identical to `KeyChain::generate(seed, len, domain)`.
    ///
    /// Construction performs the one unavoidable full walk (computing
    /// the commitment `K_0` from the head) and seeds the pebble set with
    /// the halving checkpoints of `[0, len]`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn generate(seed: &[u8], len: usize, domain: Domain) -> Self {
        assert!(len > 0, "key chain must have at least one usable key");
        Self::from_head(Key::derive(CHAIN_HEAD_LABEL, seed), len, domain)
    }

    /// Generates a pebbled chain whose last key `K_len` is exactly
    /// `head` — key-for-key identical to `KeyChain::from_head`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn from_head(head: Key, len: usize, domain: Domain) -> Self {
        assert!(len > 0, "key chain must have at least one usable key");
        let mut state = PebbleState {
            pebbles: vec![(len, head)],
            steps: 0,
            max_pebbles: 1,
            lookback: DEFAULT_LOOKBACK,
        };
        let commitment = state.serve(0, domain);
        Self {
            domain,
            len,
            commitment,
            state: RefCell::new(state),
        }
    }

    /// Replaces the look-back retention window (in intervals). Raise it
    /// when a protocol re-reads keys more than [`struct@PebbledChain`]'s
    /// default window behind the newest served index.
    #[must_use]
    pub fn with_lookback(self, lookback: usize) -> Self {
        self.state.borrow_mut().lookback = lookback;
        self
    }

    /// `K_i` by value, or `None` past the end of the chain. Amortized
    /// O(log n) one-way applications under sequential access.
    #[must_use]
    pub fn key(&self, i: usize) -> Option<Key> {
        if i > self.len {
            return None;
        }
        if i == 0 {
            return Some(self.commitment);
        }
        Some(self.state.borrow_mut().serve(i, self.domain))
    }

    /// The commitment `K_0` (cached at construction, O(1)).
    #[must_use]
    pub fn commitment(&self) -> Key {
        self.commitment
    }

    /// Number of usable keys (`K_1 ..= K_len`). Always at least 1 by
    /// construction, so there is deliberately no `is_empty`.
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The one-way function domain this chain uses.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Pebbles currently resident (memory instrumentation).
    #[must_use]
    pub fn resident_pebbles(&self) -> usize {
        self.state.borrow().pebbles.len()
    }

    /// High-water mark of resident pebbles since construction.
    #[must_use]
    pub fn max_resident_pebbles(&self) -> usize {
        self.state.borrow().max_pebbles
    }

    /// Total one-way applications since construction (work
    /// instrumentation; construction's full walk included).
    #[must_use]
    pub fn one_way_steps(&self) -> u64 {
        self.state.borrow().steps
    }
}

impl ChainStore for PebbledChain {
    fn key(&self, i: usize) -> Option<Key> {
        PebbledChain::key(self, i)
    }

    fn commitment(&self) -> Key {
        self.commitment
    }

    fn len(&self) -> usize {
        self.len
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn anchor(&self) -> ChainAnchor {
        ChainAnchor::new(self.commitment, 0, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyChain;

    #[test]
    fn agrees_with_dense_chain_everywhere() {
        for len in [1usize, 2, 3, 7, 8, 9, 64, 100] {
            let dense = KeyChain::generate(b"s", len, Domain::F);
            let pebbled = PebbledChain::generate(b"s", len, Domain::F);
            assert_eq!(pebbled.commitment(), *dense.commitment(), "len {len}");
            for i in 0..=len {
                assert_eq!(pebbled.key(i), dense.key(i).copied(), "len {len} index {i}");
            }
            assert_eq!(pebbled.key(len + 1), None);
        }
    }

    #[test]
    fn from_head_agrees_with_dense_from_head() {
        let head = Key::derive(b"t", b"head");
        let dense = KeyChain::from_head(head, 33, Domain::F1);
        let pebbled = PebbledChain::from_head(head, 33, Domain::F1);
        for i in (0..=33).rev() {
            assert_eq!(pebbled.key(i), dense.key(i).copied(), "index {i}");
        }
    }

    #[test]
    fn sequential_traversal_stays_logarithmic_in_memory() {
        let n = 4096usize;
        let chain = PebbledChain::generate(b"big", n, Domain::F);
        for i in 1..=n {
            let _ = chain.key(i).unwrap();
        }
        // log2(4096) = 12; allow a small constant factor for the
        // look-back window and in-flight midpoints.
        let bound = 4 * 12 + DEFAULT_LOOKBACK + 4;
        assert!(
            chain.max_resident_pebbles() <= bound,
            "{} pebbles resident (bound {bound})",
            chain.max_resident_pebbles()
        );
    }

    #[test]
    fn sequential_traversal_is_n_log_n_work() {
        let n = 4096u64;
        let chain = PebbledChain::generate(b"big", n as usize, Domain::F);
        for i in 1..=n as usize {
            let _ = chain.key(i).unwrap();
        }
        // Construction walks n steps; traversal adds O(n log n).
        let bound = n * 12 * 2 + n;
        assert!(
            chain.one_way_steps() <= bound,
            "{} one-way steps (bound {bound})",
            chain.one_way_steps()
        );
    }

    #[test]
    fn lookback_serves_teslas_disclosure_pattern() {
        // packet(i) reads key(i) then key(i - d): both must resolve.
        let chain = PebbledChain::generate(b"s", 256, Domain::F);
        let dense = KeyChain::generate(b"s", 256, Domain::F);
        for i in 3..=256usize {
            assert_eq!(chain.key(i), dense.key(i).copied());
            assert_eq!(chain.key(i - 2), dense.key(i - 2).copied());
        }
    }

    #[test]
    fn deep_lookback_past_window_is_still_correct() {
        let chain = PebbledChain::generate(b"s", 512, Domain::F);
        let dense = KeyChain::generate(b"s", 512, Domain::F);
        for i in 1..=512usize {
            let _ = chain.key(i);
        }
        // Far behind the retention window: slow path, same answer.
        assert_eq!(chain.key(5), dense.key(5).copied());
        assert_eq!(chain.key(300), dense.key(300).copied());
    }

    #[test]
    fn repeated_lookup_of_same_index_is_free() {
        let chain = PebbledChain::generate(b"s", 128, Domain::F);
        let _ = chain.key(64);
        let steps = chain.one_way_steps();
        let _ = chain.key(64);
        assert_eq!(chain.one_way_steps(), steps, "second lookup re-walked");
    }

    #[test]
    fn with_lookback_widens_retention() {
        let chain = PebbledChain::generate(b"s", 64, Domain::F).with_lookback(64);
        for i in 1..=64usize {
            let _ = chain.key(i);
        }
        let steps = chain.one_way_steps();
        // Everything within the widened window is still resident.
        let _ = chain.key(10);
        assert_eq!(chain.one_way_steps(), steps);
    }

    #[test]
    #[should_panic(expected = "at least one usable key")]
    fn zero_length_panics() {
        let _ = PebbledChain::generate(b"s", 0, Domain::F);
    }

    #[test]
    fn anchor_matches_dense_anchor() {
        let dense = KeyChain::generate(b"s", 16, Domain::F);
        let pebbled = PebbledChain::generate(b"s", 16, Domain::F);
        assert_eq!(ChainStore::anchor(&pebbled), dense.anchor());
        let mut anchor = ChainStore::anchor(&pebbled);
        for i in 1..=16u64 {
            let key = pebbled.key(i as usize).unwrap();
            assert_eq!(anchor.accept(&key, i), Ok(1));
        }
    }

    #[test]
    fn clone_is_independent() {
        let a = PebbledChain::generate(b"s", 32, Domain::F);
        let b = a.clone();
        for i in 1..=32usize {
            let _ = a.key(i);
        }
        assert_eq!(b.key(1), a.key(1));
    }
}
