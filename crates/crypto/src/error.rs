use std::error::Error;
use std::fmt;

/// Why a disclosed key failed verification against a chain anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainVerifyError {
    /// The claimed index is at or before the anchor — the key for that
    /// interval is already public, so the disclosure proves nothing.
    NotAhead {
        /// Index of the anchor key the receiver currently trusts.
        anchor_index: u64,
        /// Index claimed by the disclosure.
        claimed_index: u64,
    },
    /// The gap between anchor and claimed index exceeds the configured
    /// recovery bound (guards against CPU-exhaustion via huge indices).
    TooFarAhead {
        /// How many one-way applications would be required.
        steps: u64,
        /// The configured maximum.
        max_steps: u64,
    },
    /// Iterating the one-way function from the candidate did not reach the
    /// anchor key: the disclosed key is not on the chain.
    Mismatch,
}

impl fmt::Display for ChainVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainVerifyError::NotAhead {
                anchor_index,
                claimed_index,
            } => write!(
                f,
                "claimed index {claimed_index} is not ahead of anchor index {anchor_index}"
            ),
            ChainVerifyError::TooFarAhead { steps, max_steps } => write!(
                f,
                "verification would need {steps} one-way steps, more than the bound {max_steps}"
            ),
            ChainVerifyError::Mismatch => f.write_str("disclosed key is not on the chain"),
        }
    }
}

impl Error for ChainVerifyError {}

/// A sender asked for an interval past the end of its one-way key chain.
///
/// Running off the chain is an operational condition — the chain simply
/// has a finite horizon — not a bug, so sender APIs return this instead
/// of panicking. The caller can stop broadcasting, roll a new chain, or
/// re-bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainExhausted {
    /// The interval that was requested.
    pub index: u64,
    /// The last interval the chain can serve.
    pub horizon: u64,
}

impl fmt::Display for ChainExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interval {} beyond chain horizon {}",
            self.index, self.horizon
        )
    }
}

impl Error for ChainExhausted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ChainVerifyError::NotAhead {
            anchor_index: 5,
            claimed_index: 3,
        };
        assert!(e.to_string().contains("not ahead"));
        assert!(ChainVerifyError::Mismatch
            .to_string()
            .contains("not on the chain"));
        let e = ChainVerifyError::TooFarAhead {
            steps: 10,
            max_steps: 5,
        };
        assert!(e.to_string().contains("bound 5"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ChainVerifyError>();
        assert_error::<ChainExhausted>();
    }

    #[test]
    fn chain_exhausted_display() {
        let e = ChainExhausted {
            index: 65,
            horizon: 64,
        };
        assert_eq!(e.to_string(), "interval 65 beyond chain horizon 64");
    }
}
