//! Cryptographic substrate for the `crowdsense-dap` workspace.
//!
//! The TESLA protocol family (`dap-tesla`) and the DAP protocol
//! (`dap-core`) rest on three primitives, all implemented here from
//! scratch (the workspace deliberately avoids external crypto crates):
//!
//! * a cryptographic hash function — [`sha256`],
//! * a message authentication code — [`hmac`], truncated to the wire
//!   sizes the paper uses ([`mac`]: 80-bit [`Mac80`], 24-bit [`MicroMac`]),
//! * **one-way key chains** with delayed disclosure — [`keychain`], built
//!   from the domain-separated one-way functions of [`oneway`]
//!   (`F`, `F'`, `F0`, `F1`, `F01`, `H` in the paper's notation).
//!
//! # Example
//!
//! ```
//! use dap_crypto::{KeyChain, Domain, mac::mac80};
//!
//! // A sender generates a 100-interval key chain from a secret seed.
//! let chain = KeyChain::generate(b"sender secret", 100, Domain::F);
//! // Receivers bootstrap with the commitment K_0 only.
//! let anchor = chain.anchor();
//!
//! // Interval 42: authenticate a message with K_42 (still undisclosed).
//! let tag = mac80(chain.key(42).unwrap(), b"sensor reading");
//!
//! // Later, K_42 is disclosed; a receiver verifies it against the anchor
//! // (following the chain backwards) and recomputes the MAC.
//! let disclosed = *chain.key(42).unwrap();
//! assert!(anchor.verify(&disclosed, 42).is_ok());
//! assert_eq!(mac80(&disclosed, b"sensor reading"), tag);
//! ```

// `deny` (not `forbid`) so the SIMD kernels in `lanes` can opt back in
// with a module-local `allow`; every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod hmac;
pub mod keychain;
pub mod lanes;
pub mod mac;
pub mod oneway;
pub mod pebble;
pub mod rng;
pub mod sha256;
pub mod sizes;

mod error;

pub use error::{ChainExhausted, ChainVerifyError};
pub use hmac::PreparedMacKey;
pub use keychain::{ChainAnchor, ChainStore, Key, KeyChain};
pub use mac::{Mac80, MicroMac};
pub use oneway::Domain;
pub use pebble::PebbledChain;
pub use rng::{FillBytes, UniformF64};

/// Constant-time equality over byte slices of equal length.
///
/// Returns `false` immediately when lengths differ (length is public for
/// every type in this crate). For equal lengths the comparison time does
/// not depend on the position of the first differing byte.
///
/// ```
/// assert!(dap_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!dap_crypto::ct_eq(b"abc", b"abd"));
/// assert!(!dap_crypto::ct_eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"samf"));
        assert!(!ct_eq(b"short", b"longer"));
    }

    #[test]
    fn ct_eq_differs_only_in_last_byte() {
        let a = [0u8; 64];
        let mut b = [0u8; 64];
        b[63] = 1;
        assert!(!ct_eq(&a, &b));
    }
}
