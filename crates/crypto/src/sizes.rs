//! Wire and storage sizes fixed by the paper (Fig. 4 and §IV-D / §VI-A).
//!
//! These constants drive both the memory accounting in `dap-core` and the
//! Fig.-5 bandwidth experiment, so they live in one place.

/// Message payload size in bits (`M (200b)` in Fig. 4).
pub const MESSAGE_BITS: u32 = 200;

/// Packet MAC size in bits (`MACi (80b)`).
pub const MAC_BITS: u32 = 80;

/// Chain key size in bits (`Ki (80b)`).
pub const KEY_BITS: u32 = 80;

/// Interval index size in bits (`i (32b)`).
pub const INDEX_BITS: u32 = 32;

/// Receiver-local μMAC size in bits (24 bits per §IV-A).
pub const MICRO_MAC_BITS: u32 = 24;

/// Bits a DAP receiver buffers per pending packet: μMAC + index
/// (the paper's "56 bits").
pub const DAP_BUFFER_ENTRY_BITS: u32 = MICRO_MAC_BITS + INDEX_BITS;

/// Bits a TESLA/TESLA++-style receiver buffers per pending packet:
/// full message + MAC (the paper's `s1 = 280 b`).
pub const TESLA_BUFFER_ENTRY_BITS: u32 = MESSAGE_BITS + MAC_BITS;

/// Size in bits of the DAP phase-1 announcement `(MAC_i, i)`.
pub const ANNOUNCE_PACKET_BITS: u32 = MAC_BITS + INDEX_BITS;

/// Size in bits of the DAP phase-2 reveal `(M_i, K_i, i)`.
pub const REVEAL_PACKET_BITS: u32 = MESSAGE_BITS + KEY_BITS + INDEX_BITS;

/// Fraction of buffer memory DAP saves relative to buffering message+MAC.
///
/// `1 − 56/280 = 0.8` — the "80 % of memory spaces are saved" claim.
#[must_use]
pub fn dap_memory_saving() -> f64 {
    1.0 - f64::from(DAP_BUFFER_ENTRY_BITS) / f64::from(TESLA_BUFFER_ENTRY_BITS)
}

/// Maximum number of buffers that fit in `memory_bits` at
/// `entry_bits` per buffered packet (`M = Mem/s` in §VI-A).
#[must_use]
pub fn buffers_for_memory(memory_bits: u64, entry_bits: u32) -> u64 {
    assert!(entry_bits > 0, "entry size must be positive");
    memory_bits / u64::from(entry_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(DAP_BUFFER_ENTRY_BITS, 56);
        assert_eq!(TESLA_BUFFER_ENTRY_BITS, 280);
        assert_eq!(ANNOUNCE_PACKET_BITS, 112);
        assert_eq!(REVEAL_PACKET_BITS, 312);
    }

    #[test]
    fn eighty_percent_saving() {
        assert!((dap_memory_saving() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn five_times_more_buffers() {
        let mem = 1024 * 1024; // 1 Mib
        let tesla = buffers_for_memory(mem, TESLA_BUFFER_ENTRY_BITS);
        let dap = buffers_for_memory(mem, DAP_BUFFER_ENTRY_BITS);
        assert_eq!(dap / tesla, 5);
    }

    #[test]
    #[should_panic(expected = "entry size must be positive")]
    fn zero_entry_size_panics() {
        let _ = buffers_for_memory(100, 0);
    }
}
