//! Truncated message authentication codes at the paper's wire sizes.
//!
//! Fig. 4 of the paper fixes the layout DAP uses on the wire and in
//! receiver memory:
//!
//! * the packet MAC `MAC_i = MAC_{K_i}(M_i)` is **80 bits** ([`Mac80`]);
//! * the receiver re-keys the received MAC under its local secret
//!   `K_recv` and stores only a **24-bit** digest
//!   `μMAC_i = MAC_{K_recv}(MAC_i)` ([`MicroMac`]).
//!
//! Following the TESLA convention, the MAC key is not the chain key itself
//! but `K'_i = F'(K_i)` — otherwise a MAC could leak chain structure.

use crate::hmac::PreparedMacKey;
use crate::keychain::Key;
use crate::oneway::{one_way, one_way_many, Domain};

/// An 80-bit packet MAC (`MAC_i` in the paper, 80 b on the wire).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mac80([u8; Mac80::LEN]);

impl Mac80 {
    /// Tag length in bytes.
    pub const LEN: usize = 10;
    /// Tag length in bits, as counted in the paper's bandwidth budget.
    pub const BITS: u32 = 80;

    /// Builds a tag from exactly [`Mac80::LEN`] bytes.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        bytes.try_into().ok().map(Mac80)
    }

    /// The raw tag bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Mac80 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mac80({self})")
    }
}

impl std::fmt::Display for Mac80 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Mac80 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A 24-bit receiver-local digest of a [`Mac80`] (`μMAC` in the paper).
///
/// Stored instead of the full packet while waiting for key disclosure:
/// 24 bits of μMAC + 32 bits of interval index = 56 bits per buffer entry,
/// versus 280 bits for message+MAC — the ~80 % memory saving DAP claims.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MicroMac([u8; MicroMac::LEN]);

impl MicroMac {
    /// Digest length in bytes.
    pub const LEN: usize = 3;
    /// Digest length in bits.
    pub const BITS: u32 = 24;

    /// Builds a μMAC from exactly [`MicroMac::LEN`] bytes.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        bytes.try_into().ok().map(MicroMac)
    }

    /// The raw digest bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for MicroMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MicroMac({self})")
    }
}

impl std::fmt::Display for MicroMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for MicroMac {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Computes the 80-bit packet MAC `MAC_{K'_i}(message)` with
/// `K'_i = F'(chain_key)`.
///
/// ```
/// use dap_crypto::{Key, mac::mac80};
/// let k = Key::derive(b"demo", b"interval-7");
/// assert_eq!(mac80(&k, b"m"), mac80(&k, b"m"));
/// assert_ne!(mac80(&k, b"m"), mac80(&k, b"n"));
/// ```
#[must_use]
pub fn mac80(chain_key: &Key, message: &[u8]) -> Mac80 {
    mac80_prepared(&prepare_chain_key(chain_key), message)
}

/// Runs the F′ derivation and HMAC key schedule for `chain_key` once,
/// for senders/receivers MACing several messages under one interval key.
#[must_use]
pub fn prepare_chain_key(chain_key: &Key) -> PreparedMacKey {
    let mac_key = one_way(Domain::MacKey, chain_key);
    PreparedMacKey::new(mac_key.as_bytes())
}

/// [`mac80`] with the `K'_i = F'(K_i)` key schedule already cached.
#[must_use]
pub fn mac80_prepared(prepared: &PreparedMacKey, message: &[u8]) -> Mac80 {
    let tag = prepared.mac(message);
    Mac80::from_slice(&tag[..Mac80::LEN]).expect("digest longer than tag")
}

/// Batch [`prepare_chain_key`]: runs the F′ derivations *and* the HMAC
/// key schedules for a whole batch of chain keys lane-parallel.
/// Bit-identical to the scalar loop.
#[must_use]
pub fn prepare_chain_keys(chain_keys: &[Key]) -> Vec<PreparedMacKey> {
    let mac_keys = one_way_many(Domain::MacKey, chain_keys);
    let key_bytes: Vec<&[u8]> = mac_keys.iter().map(Key::as_bytes).collect();
    PreparedMacKey::new_many(&key_bytes)
}

/// Batch [`mac80`]: `out[i] = mac80(&chain_keys[i], messages[i])` with
/// every SHA-256 compression lane-parallel across the batch.
///
/// # Panics
///
/// Panics if `chain_keys` and `messages` differ in length.
#[must_use]
pub fn mac80_many(chain_keys: &[Key], messages: &[&[u8]]) -> Vec<Mac80> {
    mac80_many_prepared(&prepare_chain_keys(chain_keys), messages)
}

/// [`mac80_many`] with the `K'_i = F'(K_i)` key schedules already cached.
///
/// # Panics
///
/// Panics if `prepared` and `messages` differ in length.
#[must_use]
pub fn mac80_many_prepared(prepared: &[PreparedMacKey], messages: &[&[u8]]) -> Vec<Mac80> {
    let refs: Vec<&PreparedMacKey> = prepared.iter().collect();
    PreparedMacKey::mac_many(&refs, messages)
        .iter()
        .map(|tag| Mac80::from_slice(&tag[..Mac80::LEN]).expect("digest longer than tag"))
        .collect()
}

/// Batch [`verify_mac80`]: `out[i]` is the constant-time comparison of
/// the recomputed tag for `(chain_keys[i], messages[i])` against
/// `tags[i]`.
///
/// # Panics
///
/// Panics if the three slices differ in length.
#[must_use]
pub fn verify_mac80_many(chain_keys: &[Key], messages: &[&[u8]], tags: &[Mac80]) -> Vec<bool> {
    assert_eq!(chain_keys.len(), tags.len(), "one tag per key");
    mac80_many(chain_keys, messages)
        .iter()
        .zip(tags.iter())
        .map(|(got, want)| crate::ct_eq(got.as_bytes(), want.as_bytes()))
        .collect()
}

/// Batch [`micro_mac_prepared`]: `out[i]` re-keys `macs[i]` under the
/// (already prepared) receiver secret `receiver_keys[i]`, lane-parallel.
///
/// # Panics
///
/// Panics if `receiver_keys` and `macs` differ in length.
#[must_use]
pub fn micro_mac_many(receiver_keys: &[&PreparedMacKey], macs: &[Mac80]) -> Vec<MicroMac> {
    let messages: Vec<&[u8]> = macs.iter().map(Mac80::as_bytes).collect();
    PreparedMacKey::mac_many(receiver_keys, &messages)
        .iter()
        .map(|tag| MicroMac::from_slice(&tag[..MicroMac::LEN]).expect("digest longer than tag"))
        .collect()
}

/// Computes the receiver-local μMAC `MAC_{K_recv}(mac)` (24 bits).
///
/// `K_recv` never leaves the receiver, so an attacker flooding the channel
/// cannot target collisions in the stored digests.
///
/// `K_recv` is also long-lived: receivers on the announce hot path should
/// prepare it once ([`prepare_receiver_key`]) and call
/// [`micro_mac_prepared`], halving the per-announce compression count.
#[must_use]
pub fn micro_mac(receiver_key: &Key, mac: &Mac80) -> MicroMac {
    micro_mac_prepared(&prepare_receiver_key(receiver_key), mac)
}

/// Caches the HMAC key schedule for a receiver-local secret `K_recv`.
#[must_use]
pub fn prepare_receiver_key(receiver_key: &Key) -> PreparedMacKey {
    PreparedMacKey::new(receiver_key.as_bytes())
}

/// [`micro_mac`] with `K_recv`'s key schedule already cached.
#[must_use]
pub fn micro_mac_prepared(prepared: &PreparedMacKey, mac: &Mac80) -> MicroMac {
    let tag = prepared.mac(mac.as_bytes());
    MicroMac::from_slice(&tag[..MicroMac::LEN]).expect("digest longer than tag")
}

/// Verifies an 80-bit MAC in constant time.
#[must_use]
pub fn verify_mac80(chain_key: &Key, message: &[u8], tag: &Mac80) -> bool {
    crate::ct_eq(mac80(chain_key, message).as_bytes(), tag.as_bytes())
}

/// [`verify_mac80`] with the chain key prepared via [`prepare_chain_key`].
#[must_use]
pub fn verify_mac80_prepared(prepared: &PreparedMacKey, message: &[u8], tag: &Mac80) -> bool {
    crate::ct_eq(mac80_prepared(prepared, message).as_bytes(), tag.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> Key {
        Key::from_slice(&[b; Key::LEN]).unwrap()
    }

    #[test]
    fn mac80_is_keyed() {
        assert_ne!(mac80(&key(1), b"m"), mac80(&key(2), b"m"));
    }

    #[test]
    fn mac80_binds_message() {
        assert_ne!(mac80(&key(1), b"m1"), mac80(&key(1), b"m2"));
    }

    #[test]
    fn mac_key_is_derived_not_raw() {
        // MAC under K must differ from HMAC keyed directly with K:
        // the F' derivation is load-bearing.
        let k = key(3);
        let direct = crate::hmac::hmac_sha256(k.as_bytes(), b"m");
        let tag = mac80(&k, b"m");
        assert_ne!(&direct[..Mac80::LEN], tag.as_bytes());
    }

    #[test]
    fn prepared_paths_match_oneshot() {
        let k = key(7);
        let prepared = prepare_chain_key(&k);
        for msg in [&b""[..], b"m", &[0xddu8; 200]] {
            let tag = mac80(&k, msg);
            assert_eq!(mac80_prepared(&prepared, msg), tag);
            assert!(verify_mac80_prepared(&prepared, msg, &tag));
        }
        let recv = key(9);
        let prepared_recv = prepare_receiver_key(&recv);
        let tag = mac80(&k, b"m");
        assert_eq!(
            micro_mac_prepared(&prepared_recv, &tag),
            micro_mac(&recv, &tag)
        );
    }

    #[test]
    fn batch_mac_apis_match_scalar_loops() {
        let keys: Vec<Key> = (0u8..6).map(key).collect();
        let messages: Vec<Vec<u8>> = (0..6usize).map(|i| vec![i as u8; i * 13]).collect();
        let msg_refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();

        let prepared = prepare_chain_keys(&keys);
        let tags = mac80_many(&keys, &msg_refs);
        for i in 0..keys.len() {
            assert_eq!(prepared[i], prepare_chain_key(&keys[i]), "prepare {i}");
            assert_eq!(tags[i], mac80(&keys[i], &messages[i]), "mac {i}");
        }
        assert_eq!(mac80_many_prepared(&prepared, &msg_refs), tags);

        let oks = verify_mac80_many(&keys, &msg_refs, &tags);
        assert!(oks.iter().all(|&ok| ok));
        let mut bad = tags.clone();
        bad[3] = mac80(&key(99), b"other");
        let oks = verify_mac80_many(&keys, &msg_refs, &bad);
        assert!(oks.iter().enumerate().all(|(i, &ok)| ok == (i != 3)));

        let recv_keys: Vec<PreparedMacKey> =
            (10u8..16).map(|b| prepare_receiver_key(&key(b))).collect();
        let recv_refs: Vec<&PreparedMacKey> = recv_keys.iter().collect();
        let micros = micro_mac_many(&recv_refs, &tags);
        for i in 0..tags.len() {
            assert_eq!(
                micros[i],
                micro_mac_prepared(&recv_keys[i], &tags[i]),
                "micro {i}"
            );
        }
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let k = key(5);
        let tag = mac80(&k, b"payload");
        assert!(verify_mac80(&k, b"payload", &tag));
        assert!(!verify_mac80(&k, b"payloaX", &tag));
        assert!(!verify_mac80(&key(6), b"payload", &tag));
    }

    #[test]
    fn micro_mac_is_receiver_local() {
        let tag = mac80(&key(1), b"m");
        assert_ne!(micro_mac(&key(10), &tag), micro_mac(&key(11), &tag));
    }

    #[test]
    fn micro_mac_binds_the_mac() {
        let recv = key(9);
        let t1 = mac80(&key(1), b"m1");
        let t2 = mac80(&key(1), b"m2");
        assert_ne!(micro_mac(&recv, &t1), micro_mac(&recv, &t2));
    }

    #[test]
    fn sizes_match_paper() {
        assert_eq!(Mac80::BITS, 80);
        assert_eq!(MicroMac::BITS, 24);
        assert_eq!(Mac80::LEN * 8, Mac80::BITS as usize);
        assert_eq!(MicroMac::LEN * 8, MicroMac::BITS as usize);
    }

    #[test]
    fn from_slice_length_checks() {
        assert!(Mac80::from_slice(&[0; 10]).is_some());
        assert!(Mac80::from_slice(&[0; 9]).is_none());
        assert!(MicroMac::from_slice(&[0; 3]).is_some());
        assert!(MicroMac::from_slice(&[0; 4]).is_none());
    }

    #[test]
    fn display_hex() {
        let t = Mac80::from_slice(&[0x0f; 10]).unwrap();
        assert_eq!(t.to_string(), "0f0f0f0f0f0f0f0f0f0f");
        let u = MicroMac::from_slice(&[1, 2, 3]).unwrap();
        assert_eq!(u.to_string(), "010203");
    }
}
