//! Domain-separated one-way functions.
//!
//! The paper (and the TESLA literature it builds on) uses a small family of
//! *distinct* one-way functions over 80-bit keys:
//!
//! | Paper name | [`Domain`] variant | Used for |
//! |---|---|---|
//! | `F`   | [`Domain::F`]        | the single-level TESLA/μTESLA/DAP key chain |
//! | `F'`  | [`Domain::MacKey`]   | deriving the MAC key `K'_i` from the chain key `K_i` |
//! | `F0`  | [`Domain::F0`]       | the high-level chain of multi-level μTESLA / EFTP / EDRP |
//! | `F1`  | [`Domain::F1`]       | the low-level chains of multi-level μTESLA |
//! | `F01` | [`Domain::F01`]      | linking a low-level chain to the high-level chain |
//! | `H`   | [`Domain::CdmCommit`]| hashing a CDM into the next CDM (EDRP, Fig. 3) |
//!
//! All are instantiated as `HMAC-SHA-256(domain label, input)` truncated to
//! the 80-bit key size, which gives mutually independent random oracles in
//! the standard-model heuristic sense: an image under one domain reveals
//! nothing about images under another.

use std::sync::OnceLock;

use crate::hmac::PreparedMacKey;
use crate::keychain::Key;

/// Identifies which of the paper's one-way functions is being applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Domain {
    /// `F` — the key chain of single-level TESLA, μTESLA and DAP.
    F,
    /// `F'` — derives the per-interval MAC key `K'_i = F'(K_i)`.
    MacKey,
    /// `F0` — the high-level key chain of multi-level μTESLA.
    F0,
    /// `F1` — the low-level key chains of multi-level μTESLA.
    F1,
    /// `F01` — links low-level chains to the high-level chain
    /// (`K_{i,n} = F01(K_i)` in EFTP, `K_{i,n} = F01(K_{i+1})` originally).
    F01,
    /// `H` — the pseudorandom function hashing `CDM_{i+1}` into `CDM_i`
    /// in EDRP.
    CdmCommit,
}

impl Domain {
    /// A unique label mixed into the HMAC key for domain separation.
    #[must_use]
    pub const fn label(self) -> &'static [u8] {
        match self {
            Domain::F => b"crowdsense-dap/oneway/F",
            Domain::MacKey => b"crowdsense-dap/oneway/F-prime",
            Domain::F0 => b"crowdsense-dap/oneway/F0",
            Domain::F1 => b"crowdsense-dap/oneway/F1",
            Domain::F01 => b"crowdsense-dap/oneway/F01",
            Domain::CdmCommit => b"crowdsense-dap/oneway/H",
        }
    }

    /// All domains, for exhaustive tests.
    #[must_use]
    pub const fn all() -> [Domain; 6] {
        [
            Domain::F,
            Domain::MacKey,
            Domain::F0,
            Domain::F1,
            Domain::F01,
            Domain::CdmCommit,
        ]
    }

    const fn index(self) -> usize {
        match self {
            Domain::F => 0,
            Domain::MacKey => 1,
            Domain::F0 => 2,
            Domain::F1 => 3,
            Domain::F01 => 4,
            Domain::CdmCommit => 5,
        }
    }

    /// The cached HMAC key schedule for this domain's label.
    ///
    /// The labels are compile-time constants, so their ipad/opad
    /// midstates are computed once per process (lazily, on first use)
    /// and shared by every chain step — cutting [`one_way`] from four
    /// SHA-256 compressions to two.
    #[must_use]
    pub fn prepared(self) -> &'static PreparedMacKey {
        static CACHE: OnceLock<[PreparedMacKey; 6]> = OnceLock::new();
        &CACHE.get_or_init(|| Domain::all().map(|d| PreparedMacKey::new(d.label())))[self.index()]
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Domain::F => "F",
            Domain::MacKey => "F'",
            Domain::F0 => "F0",
            Domain::F1 => "F1",
            Domain::F01 => "F01",
            Domain::CdmCommit => "H",
        };
        f.write_str(name)
    }
}

/// Applies the one-way function identified by `domain` to `key`.
///
/// The output is the first [`Key::LEN`] bytes of
/// `HMAC-SHA-256(domain label, key bytes)`. Inverting it requires inverting
/// HMAC-SHA-256, so the chain property "`K_{i+1}` cannot be derived from
/// `K_i`" holds under standard assumptions.
#[must_use]
pub fn one_way(domain: Domain, key: &Key) -> Key {
    let tag = domain.prepared().mac(key.as_bytes());
    Key::from_slice(&tag[..Key::LEN]).expect("digest longer than key")
}

/// Batch [`one_way`]: `out[i] = one_way(domain, keys[i])` with the HMAC
/// compressions lane-parallel across the batch (see [`crate::lanes`]).
/// Bit-identical to the scalar loop.
#[must_use]
pub fn one_way_many(domain: Domain, keys: &[Key]) -> Vec<Key> {
    let prepared = vec![domain.prepared(); keys.len()];
    let messages: Vec<&[u8]> = keys.iter().map(Key::as_bytes).collect();
    PreparedMacKey::mac_many(&prepared, &messages)
        .iter()
        .map(|tag| Key::from_slice(&tag[..Key::LEN]).expect("digest longer than key"))
        .collect()
}

/// Applies `one_way(domain, ·)` exactly `steps` times.
///
/// `steps == 0` returns `key` unchanged. Used by receivers to recover from
/// lost key disclosures: `K_i = F^j(K_{i+j})`.
#[must_use]
pub fn one_way_iter(domain: Domain, key: &Key, steps: usize) -> Key {
    let prepared = domain.prepared();
    let mut k = *key;
    for _ in 0..steps {
        let tag = prepared.mac(k.as_bytes());
        k = Key::from_slice(&tag[..Key::LEN]).expect("digest longer than key");
    }
    k
}

/// Like [`one_way_iter`], but collects every intermediate image:
/// element `t` of the result is `F^{t+1}(key)`, so the last element
/// equals `one_way_iter(domain, key, steps)`.
///
/// Receivers recovering a hash-chain segment after a blackout walk the
/// same keys twice when they only keep the endpoint — once to verify the
/// disclosure, again for every duplicate reveal inside the gap. The
/// trace hands back the whole segment so callers can cache it (see
/// `ChainAnchor::accept_recovering`).
#[must_use]
pub fn one_way_trace(domain: Domain, key: &Key, steps: usize) -> Vec<Key> {
    let prepared = domain.prepared();
    let mut out = Vec::with_capacity(steps);
    let mut k = *key;
    for _ in 0..steps {
        let tag = prepared.mac(k.as_bytes());
        k = Key::from_slice(&tag[..Key::LEN]).expect("digest longer than key");
        out.push(k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(byte: u8) -> Key {
        Key::from_slice(&[byte; Key::LEN]).unwrap()
    }

    #[test]
    fn deterministic() {
        assert_eq!(one_way(Domain::F, &k(7)), one_way(Domain::F, &k(7)));
    }

    #[test]
    fn domains_are_separated() {
        let input = k(7);
        let all = Domain::all();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(
                    one_way(all[i], &input),
                    one_way(all[j], &input),
                    "domains {} and {} collide",
                    all[i],
                    all[j]
                );
            }
        }
    }

    #[test]
    fn different_inputs_different_outputs() {
        assert_ne!(one_way(Domain::F, &k(1)), one_way(Domain::F, &k(2)));
    }

    #[test]
    fn iterated_composition() {
        let start = k(3);
        let two = one_way(Domain::F, &one_way(Domain::F, &start));
        assert_eq!(one_way_iter(Domain::F, &start, 2), two);
        assert_eq!(one_way_iter(Domain::F, &start, 0), start);
    }

    #[test]
    fn one_way_matches_unprepared_hmac_reference() {
        // The midstate cache must be a pure optimisation: every domain's
        // one_way equals HMAC-SHA-256(label, key) truncated.
        let key = k(0x42);
        for domain in Domain::all() {
            let reference = crate::hmac::hmac_sha256(domain.label(), key.as_bytes());
            assert_eq!(
                one_way(domain, &key).as_bytes(),
                &reference[..Key::LEN],
                "domain {domain}"
            );
        }
    }

    #[test]
    fn trace_matches_iter_at_every_step() {
        let start = k(9);
        let trace = one_way_trace(Domain::F, &start, 12);
        assert_eq!(trace.len(), 12);
        for (t, key) in trace.iter().enumerate() {
            assert_eq!(*key, one_way_iter(Domain::F, &start, t + 1));
        }
        assert!(one_way_trace(Domain::F, &start, 0).is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(Domain::F.to_string(), "F");
        assert_eq!(Domain::MacKey.to_string(), "F'");
        assert_eq!(Domain::CdmCommit.to_string(), "H");
    }
}
