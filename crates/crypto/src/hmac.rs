//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1) on top of [`crate::sha256`].
//!
//! Every MAC in the workspace — the 80-bit packet MAC, the 24-bit receiver
//! μMAC and the key-chain one-way functions — is a truncation of this
//! primitive. Correctness is pinned by the RFC 4231 test vectors.

use crate::sha256::{self, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Cached ipad/opad midstates for a fixed HMAC key.
///
/// Keying HMAC-SHA-256 costs two compression calls (one per pad block)
/// before the message is even touched. Every long-lived key in the
/// workspace — the six [`crate::Domain`] labels driving `one_way`, a
/// receiver's `K_recv` rekeying each announce's μMAC — pays that key
/// schedule on *every* call when routed through the one-shot
/// [`hmac_sha256`]. A `PreparedMacKey` runs it **once**, storing the two
/// compressed states; [`mac`](Self::mac) then finishes a short message
/// in two compressions instead of four.
///
/// ```
/// use dap_crypto::hmac::{hmac_sha256, PreparedMacKey};
///
/// let prepared = PreparedMacKey::new(b"key");
/// assert_eq!(prepared.mac(b"message"), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PreparedMacKey {
    /// State after compressing `key ⊕ ipad`.
    inner: [u32; 8],
    /// State after compressing `key ⊕ opad`.
    outer: [u32; 8],
}

impl std::fmt::Debug for PreparedMacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedMacKey").finish_non_exhaustive()
    }
}

impl PreparedMacKey {
    /// Runs the HMAC key schedule for `key` (any length; keys longer
    /// than the 64-byte block are hashed first, per the spec) and caches
    /// both pad-block midstates.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = block_key[i] ^ 0x36;
            opad_key[i] = block_key[i] ^ 0x5c;
        }

        Self {
            inner: Sha256::compress_from(&sha256::INITIAL_STATE, &ipad_key),
            outer: Sha256::compress_from(&sha256::INITIAL_STATE, &opad_key),
        }
    }

    /// One-shot tag over `message`, resuming from the cached midstates.
    ///
    /// Never touches the incremental staging buffer: for messages up to
    /// 55 bytes (every MAC input in the protocol stack) this is exactly
    /// two compression calls.
    #[must_use]
    pub fn mac(&self, message: &[u8]) -> [u8; DIGEST_LEN] {
        let inner_digest = sha256::digest_from_midstate(&self.inner, BLOCK_LEN as u64, message);
        sha256::digest_from_midstate(&self.outer, BLOCK_LEN as u64, &inner_digest)
    }

    /// Runs the HMAC key schedule for a whole batch of keys with the
    /// pad-block compressions lane-parallel: all `2n` ipad/opad blocks go
    /// through one [`crate::lanes::compress_many`] call instead of `2n`
    /// scalar compressions.
    ///
    /// Bit-identical to `keys.iter().map(|k| PreparedMacKey::new(k))`.
    #[must_use]
    pub fn new_many(keys: &[&[u8]]) -> Vec<Self> {
        let n = keys.len();
        let mut states = vec![sha256::INITIAL_STATE; 2 * n];
        let mut blocks = vec![[0u8; BLOCK_LEN]; 2 * n];
        for (i, key) in keys.iter().enumerate() {
            let mut block_key = [0u8; BLOCK_LEN];
            if key.len() > BLOCK_LEN {
                let digest = sha256::digest(key);
                block_key[..DIGEST_LEN].copy_from_slice(&digest);
            } else {
                block_key[..key.len()].copy_from_slice(key);
            }
            for j in 0..BLOCK_LEN {
                blocks[2 * i][j] = block_key[j] ^ 0x36;
                blocks[2 * i + 1][j] = block_key[j] ^ 0x5c;
            }
        }
        crate::lanes::compress_many(&mut states, &blocks);
        (0..n)
            .map(|i| Self {
                inner: states[2 * i],
                outer: states[2 * i + 1],
            })
            .collect()
    }

    /// Batch [`mac`](Self::mac): `out[i] = keys[i].mac(messages[i])`,
    /// with both HMAC passes (inner over the messages, outer over the
    /// inner digests) running lane-parallel across the whole batch.
    ///
    /// Bit-identical to the scalar loop — the lanes only reorder
    /// *independent* compressions, never the data inside one.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `messages` differ in length.
    #[must_use]
    pub fn mac_many(keys: &[&Self], messages: &[&[u8]]) -> Vec<[u8; DIGEST_LEN]> {
        assert_eq!(keys.len(), messages.len(), "one message per key");
        let inner_states: Vec<[u32; 8]> = keys.iter().map(|k| k.inner).collect();
        let inner_digests =
            crate::lanes::digest_many_from_midstates(&inner_states, BLOCK_LEN as u64, messages);
        let outer_states: Vec<[u32; 8]> = keys.iter().map(|k| k.outer).collect();
        let tails: Vec<&[u8]> = inner_digests.iter().map(|d| d.as_slice()).collect();
        crate::lanes::digest_many_from_midstates(&outer_states, BLOCK_LEN as u64, &tails)
    }

    /// An incremental hasher resuming from the cached key schedule.
    #[must_use]
    pub fn hasher(&self) -> HmacSha256 {
        HmacSha256 {
            inner: Sha256::from_midstate(self.inner, BLOCK_LEN as u64),
            outer: self.outer,
        }
    }
}

/// Incremental HMAC-SHA-256.
///
/// ```
/// use dap_crypto::hmac::HmacSha256;
///
/// let mut m = HmacSha256::new(b"key");
/// m.update(b"mess");
/// m.update(b"age");
/// assert_eq!(m.finalize(), dap_crypto::hmac::hmac_sha256(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Midstate after compressing `key ⊕ opad`, for the outer pass.
    outer: [u32; 8],
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length; keys longer
    /// than the 64-byte block are hashed first, per the spec).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        PreparedMacKey::new(key).hasher()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the instance and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        sha256::digest_from_midstate(&self.outer, BLOCK_LEN as u64, &inner_digest)
    }
}

/// One-shot HMAC-SHA-256.
///
/// Hot paths with a long-lived key should prepare it once with
/// [`PreparedMacKey`] instead; this convenience re-runs the key schedule
/// on every call.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    PreparedMacKey::new(key).mac(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases (SHA-256 column).
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let data = [0xcdu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a \
                            larger than block-size data. The key needs to be hashed \
                            before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    // RFC 4231 vectors asserted through the prepared-key fast path as
    // well as the one-shot convenience (which now routes through it).
    #[test]
    fn rfc4231_through_prepared_key() {
        let prepared = PreparedMacKey::new(&[0x0bu8; 20]);
        assert_eq!(
            hex(&prepared.mac(b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        let jefe = PreparedMacKey::new(b"Jefe");
        assert_eq!(
            hex(&jefe.mac(b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Case 6: key longer than one block must be hashed first.
        let long = PreparedMacKey::new(&[0xaau8; 131]);
        assert_eq!(
            hex(&long.mac(b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn prepared_key_reuse_matches_fresh_keying() {
        let prepared = PreparedMacKey::new(b"long-lived");
        for len in [0usize, 1, 31, 55, 56, 63, 64, 65, 200] {
            let msg = vec![0xcdu8; len];
            assert_eq!(
                prepared.mac(&msg),
                hmac_sha256(b"long-lived", &msg),
                "len {len}"
            );
        }
    }

    #[test]
    fn prepared_hasher_matches_oneshot() {
        let prepared = PreparedMacKey::new(b"k");
        let mut m = prepared.hasher();
        m.update(b"abc");
        m.update(b"def");
        assert_eq!(m.finalize(), prepared.mac(b"abcdef"));
    }

    #[test]
    fn prepared_key_debug_redacts() {
        let s = format!("{:?}", PreparedMacKey::new(b"secret"));
        assert!(s.contains("PreparedMacKey"));
        assert!(!s.contains("secret"));
    }

    #[test]
    fn new_many_matches_scalar_keying() {
        let keys: Vec<Vec<u8>> = vec![
            vec![],
            b"k".to_vec(),
            vec![0xaau8; 64],
            vec![0xaau8; 131], // long key: hashed first
            b"Jefe".to_vec(),
        ];
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let batch = PreparedMacKey::new_many(&refs);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(batch[i], PreparedMacKey::new(key), "key {i}");
        }
        assert!(PreparedMacKey::new_many(&[]).is_empty());
    }

    #[test]
    fn mac_many_matches_scalar_loop() {
        let prepared: Vec<PreparedMacKey> =
            (0u8..7).map(|i| PreparedMacKey::new(&[i; 16])).collect();
        let messages: Vec<Vec<u8>> = (0..7usize).map(|i| vec![0xcd; i * 17]).collect();
        let key_refs: Vec<&PreparedMacKey> = prepared.iter().collect();
        let msg_refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let batch = PreparedMacKey::mac_many(&key_refs, &msg_refs);
        for i in 0..7 {
            assert_eq!(batch[i], prepared[i].mac(&messages[i]), "lane {i}");
        }
    }

    #[test]
    fn rfc4231_through_mac_many() {
        let keys = PreparedMacKey::new_many(&[&[0x0bu8; 20][..], b"Jefe", &[0xaau8; 131][..]]);
        let key_refs: Vec<&PreparedMacKey> = keys.iter().collect();
        let tags = PreparedMacKey::mac_many(
            &key_refs,
            &[
                b"Hi There".as_slice(),
                b"what do ya want for nothing?".as_slice(),
                b"Test Using Larger Than Block-Size Key - Hash Key First".as_slice(),
            ],
        );
        assert_eq!(
            hex(&tags[0]),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&tags[1]),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hex(&tags[2]),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut m = HmacSha256::new(b"k");
        for chunk in [b"ab".as_slice(), b"", b"cdef"] {
            m.update(chunk);
        }
        assert_eq!(m.finalize(), hmac_sha256(b"k", b"abcdef"));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn key_padding_is_not_ambiguous() {
        // A key and the same key with a trailing zero byte must differ
        // (both are padded with zeros internally, HMAC is still keyed on
        // the padded block, so this documents the known HMAC property).
        let a = hmac_sha256(b"k", b"m");
        let b = hmac_sha256(b"k\0", b"m");
        // HMAC-SHA256("k") == HMAC-SHA256("k\0") by construction; assert it
        // so a future change to padding is caught.
        assert_eq!(a, b);
    }
}
