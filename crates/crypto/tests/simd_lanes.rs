//! Lane-vs-scalar equality for the multi-buffer SHA-256 stack, on the
//! in-tree `dap-testkit` harness (deterministic, seeded, shrinking).
//!
//! Every batch API in `dap-crypto` must be bit-identical to the scalar
//! loop it replaces, on every lane width this host supports and on
//! ragged batch sizes (0, 1, 3, lanes-1, lanes, lanes+1, and random) —
//! a SIMD kernel is a pure throughput trade-off, never an observable
//! one. The standard vectors (FIPS 180-4 for SHA-256, RFC 4231 for
//! HMAC-SHA-256) are also routed through the multi-lane path so the
//! kernels are pinned to the specification, not just to our own scalar
//! code.

use dap_crypto::hmac::{hmac_sha256, PreparedMacKey};
use dap_crypto::lanes::{
    compress_many_with, digest_many, digest_many_from_midstates, supported, LaneWidth,
};
use dap_crypto::mac::{mac80, mac80_many, verify_mac80, verify_mac80_many, Mac80};
use dap_crypto::sha256::{digest, digest_from_midstate, Sha256, BLOCK_LEN, INITIAL_STATE};
use dap_crypto::Key;
use dap_testkit::{check, Gen};

/// The batch sizes every width must handle: empty, sub-width, exactly
/// one SIMD chunk, and one lane past a chunk boundary.
fn ragged_sizes(width: LaneWidth) -> Vec<usize> {
    let lanes = width.lanes();
    let mut sizes = vec![0, 1, 3, lanes.saturating_sub(1), lanes, lanes + 1];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

fn arb_state(g: &mut Gen) -> [u32; 8] {
    let mut s = INITIAL_STATE;
    for word in &mut s {
        *word ^= g.any_u32();
    }
    s
}

fn arb_block(g: &mut Gen) -> [u8; BLOCK_LEN] {
    g.byte_array()
}

#[test]
fn compress_many_equals_scalar_loop_on_every_width_and_ragged_size() {
    check("compress_many_lane_vs_scalar", |g| {
        for &width in supported() {
            for n in ragged_sizes(width) {
                let states: Vec<[u32; 8]> = (0..n).map(|_| arb_state(g)).collect();
                let blocks: Vec<[u8; BLOCK_LEN]> = (0..n).map(|_| arb_block(g)).collect();
                let reference: Vec<[u32; 8]> = states
                    .iter()
                    .zip(blocks.iter())
                    .map(|(s, b)| Sha256::compress_from(s, b))
                    .collect();
                let mut got = states.clone();
                compress_many_with(width, &mut got, &blocks);
                assert_eq!(got, reference, "width {width}, batch {n}");
            }
        }
    });
}

#[test]
fn digest_many_equals_scalar_digest_on_ragged_batches() {
    check("digest_many_lane_vs_scalar", |g| {
        // Random batch size around the widest kernel's chunk boundary,
        // with per-lane lengths straddling block boundaries (empty,
        // sub-block, multi-block).
        let n = g.usize_in(0..19);
        let messages: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(0..200)).collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let got = digest_many(&refs);
        assert_eq!(got.len(), n);
        for (i, msg) in messages.iter().enumerate() {
            assert_eq!(got[i], digest(msg), "lane {i} of {n}");
        }
    });
}

#[test]
fn midstate_batches_equal_the_scalar_midstate_path() {
    check("digest_many_from_midstates_lane_vs_scalar", |g| {
        let n = g.usize_in(0..13);
        // Each lane resumes from its own midstate, the HMAC shape: one
        // absorbed block, then a ragged tail.
        let prefixes: Vec<[u8; BLOCK_LEN]> = (0..n).map(|_| arb_block(g)).collect();
        let states: Vec<[u32; 8]> = prefixes
            .iter()
            .map(|p| Sha256::compress_from(&INITIAL_STATE, p))
            .collect();
        let tails: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(0..150)).collect();
        let tail_refs: Vec<&[u8]> = tails.iter().map(Vec::as_slice).collect();
        let got = digest_many_from_midstates(&states, BLOCK_LEN as u64, &tail_refs);
        for i in 0..n {
            assert_eq!(
                got[i],
                digest_from_midstate(&states[i], BLOCK_LEN as u64, &tails[i]),
                "lane {i} of {n}"
            );
        }
    });
}

#[test]
fn mac80_many_equals_the_scalar_mac_loop() {
    check("mac80_many_lane_vs_scalar", |g| {
        let n = g.usize_in(0..17);
        let keys: Vec<Key> = (0..n)
            .map(|_| Key::from_slice(&g.byte_array::<10>()).unwrap())
            .collect();
        let messages: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(0..96)).collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let got = mac80_many(&keys, &refs);
        for i in 0..n {
            assert_eq!(got[i], mac80(&keys[i], &messages[i]), "lane {i} of {n}");
        }
    });
}

#[test]
fn verify_mac80_many_equals_the_scalar_verify_loop() {
    check("verify_mac80_many_lane_vs_scalar", |g| {
        let n = g.usize_in(1..13);
        let keys: Vec<Key> = (0..n)
            .map(|_| Key::from_slice(&g.byte_array::<10>()).unwrap())
            .collect();
        let messages: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(0..64)).collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        // Corrupt a random subset of tags so both accept and reject
        // lanes appear in the same batch.
        let tags: Vec<Mac80> = mac80_many(&keys, &refs)
            .into_iter()
            .map(|tag| {
                if g.any_bool() {
                    let mut bytes = [0u8; Mac80::LEN];
                    bytes.copy_from_slice(tag.as_bytes());
                    bytes[0] ^= 1;
                    Mac80::from_slice(&bytes).unwrap()
                } else {
                    tag
                }
            })
            .collect();
        let got = verify_mac80_many(&keys, &refs, &tags);
        for i in 0..n {
            assert_eq!(
                got[i],
                verify_mac80(&keys[i], &messages[i], &tags[i]),
                "lane {i} of {n}"
            );
        }
    });
}

#[test]
fn prepared_mac_many_equals_the_scalar_prepared_mac() {
    check("prepared_mac_many_lane_vs_scalar", |g| {
        let n = g.usize_in(0..11);
        // Keys straddle the block boundary so both the copied and the
        // pre-hashed key schedules flow through the batch constructor.
        let keys: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(0..96)).collect();
        let key_refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let prepared = PreparedMacKey::new_many(&key_refs);
        let messages: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(0..128)).collect();
        let msg_refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let prepared_refs: Vec<&PreparedMacKey> = prepared.iter().collect();
        let got = PreparedMacKey::mac_many(&prepared_refs, &msg_refs);
        for i in 0..n {
            let scalar = PreparedMacKey::new(&keys[i]);
            assert_eq!(got[i], scalar.mac(&messages[i]), "lane {i} of {n}");
            assert_eq!(got[i], hmac_sha256(&keys[i], &messages[i]), "lane {i}");
        }
    });
}

// ---------------------------------------------------------------------
// Specification vectors through the multi-lane path.
// ---------------------------------------------------------------------

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// FIPS 180-4 SHA-256 vectors, all submitted as ONE ragged batch so the
/// answers come out of the lane-parallel kernels (on hosts that have
/// them) rather than one-message scalar code.
#[test]
fn fips_180_4_vectors_through_the_multi_lane_path() {
    let million_a = vec![b'a'; 1_000_000];
    let messages: [&[u8]; 4] = [
        b"abc",
        b"",
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        &million_a,
    ];
    let expected = [
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
    ];
    let got = digest_many(&messages);
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(hex(&got[i]), *want, "FIPS vector {i}");
    }
}

/// RFC 4231 HMAC-SHA-256 test cases 1-4, 6 and 7 (case 5 specifies a
/// truncated output and is out of scope), all through
/// [`PreparedMacKey::new_many`] + [`PreparedMacKey::mac_many`] — the
/// lane-parallel HMAC pipeline the reveal-verify batch path uses.
#[test]
fn rfc_4231_vectors_through_the_multi_lane_path() {
    let case4_key: Vec<u8> = (1..=25).collect();
    let long_key = vec![0xaau8; 131];
    let keys: [&[u8]; 6] = [
        &[0x0bu8; 20],
        b"Jefe",
        &[0xaau8; 20],
        &case4_key,
        &long_key,
        &long_key,
    ];
    let data: [&[u8]; 6] = [
        b"Hi There",
        b"what do ya want for nothing?",
        &[0xddu8; 50],
        &[0xcdu8; 50],
        b"Test Using Larger Than Block-Size Key - Hash Key First",
        b"This is a test using a larger than block-size key and a larger \
          than block-size data. The key needs to be hashed before being \
          used by the HMAC algorithm.",
    ];
    let expected = [
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
    ];
    let prepared = PreparedMacKey::new_many(&keys);
    let prepared_refs: Vec<&PreparedMacKey> = prepared.iter().collect();
    let got = PreparedMacKey::mac_many(&prepared_refs, &data);
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(hex(&got[i]), *want, "RFC 4231 case {i}");
    }
}
