//! Property-based tests for the crypto substrate.

use dap_crypto::oneway::one_way_iter;
use dap_crypto::sha256::Sha256;
use dap_crypto::{ct_eq, Domain, Key, KeyChain};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = Key> {
    proptest::array::uniform10(any::<u8>()).prop_map(|bytes| Key::from_slice(&bytes).unwrap())
}

fn arb_domain() -> impl Strategy<Value = Domain> {
    prop_oneof![
        Just(Domain::F),
        Just(Domain::MacKey),
        Just(Domain::F0),
        Just(Domain::F1),
        Just(Domain::F01),
        Just(Domain::CdmCommit),
    ]
}

proptest! {
    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                       split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), dap_crypto::sha256::digest(&data));
    }

    #[test]
    fn ct_eq_matches_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                              b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn one_way_iter_composes(key in arb_key(), domain in arb_domain(),
                             a in 0usize..8, b in 0usize..8) {
        let left = one_way_iter(domain, &one_way_iter(domain, &key, a), b);
        let right = one_way_iter(domain, &key, a + b);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn chain_anchor_accepts_every_key_in_any_order_of_gaps(
        seed in any::<u64>(),
        indices in proptest::collection::btree_set(1u64..40, 1..10),
    ) {
        let chain = KeyChain::generate(&seed.to_le_bytes(), 40, Domain::F);
        let mut anchor = chain.anchor();
        // Strictly increasing subsets of disclosures must all verify.
        for &i in &indices {
            prop_assert!(anchor.accept(chain.key(i as usize).unwrap(), i).is_ok());
        }
    }

    #[test]
    fn chain_anchor_rejects_random_keys(seed in any::<u64>(), forged in arb_key(),
                                        index in 1u64..40) {
        let chain = KeyChain::generate(&seed.to_le_bytes(), 40, Domain::F);
        // A random 80-bit key is on the chain with probability 2^-80.
        prop_assume!(&forged != chain.key(index as usize).unwrap());
        let anchor = chain.anchor();
        prop_assert!(anchor.verify(&forged, index).is_err());
    }

    #[test]
    fn mac80_deterministic_and_message_binding(
        key in arb_key(),
        m1 in proptest::collection::vec(any::<u8>(), 0..64),
        m2 in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        use dap_crypto::mac::{mac80, verify_mac80};
        let t1 = mac80(&key, &m1);
        prop_assert!(verify_mac80(&key, &m1, &t1));
        if m1 != m2 {
            // 80-bit tags: collision probability is negligible for the
            // test-case counts proptest runs.
            prop_assert_ne!(t1, mac80(&key, &m2));
        }
    }
}
