//! Property-based tests for the crypto substrate, on the in-tree
//! `dap-testkit` harness (deterministic, seeded, shrinking).

use dap_crypto::oneway::{one_way_iter, one_way_trace};
use dap_crypto::sha256::Sha256;
use dap_crypto::{ct_eq, ChainStore, Domain, Key, KeyChain, PebbledChain, PreparedMacKey};
use dap_testkit::{check, Gen, Strategy};

fn arb_key() -> Strategy<Key> {
    Strategy::new(|g: &mut Gen| {
        let bytes: [u8; 10] = g.byte_array();
        Key::from_slice(&bytes).unwrap()
    })
}

const DOMAINS: [Domain; 6] = [
    Domain::F,
    Domain::MacKey,
    Domain::F0,
    Domain::F1,
    Domain::F01,
    Domain::CdmCommit,
];

fn arb_domain(g: &mut Gen) -> Domain {
    *g.pick(&DOMAINS)
}

#[test]
fn sha256_streaming_equals_oneshot() {
    check("sha256_streaming_equals_oneshot", |g| {
        let data = g.bytes(0..512);
        let split = g.usize_in(0..512).min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), dap_crypto::sha256::digest(&data));
    });
}

#[test]
fn ct_eq_matches_slice_eq() {
    check("ct_eq_matches_slice_eq", |g| {
        let a = g.bytes(0..64);
        let b = g.bytes(0..64);
        assert_eq!(ct_eq(&a, &b), a == b);
    });
}

#[test]
fn one_way_iter_composes() {
    let key = arb_key();
    check("one_way_iter_composes", move |g| {
        let key = key.sample(g);
        let domain = arb_domain(g);
        let a = g.usize_in(0..8);
        let b = g.usize_in(0..8);
        let left = one_way_iter(domain, &one_way_iter(domain, &key, a), b);
        let right = one_way_iter(domain, &key, a + b);
        assert_eq!(left, right);
    });
}

#[test]
fn chain_anchor_accepts_every_key_in_any_order_of_gaps() {
    check("chain_anchor_accepts_gaps", |g| {
        let seed = g.any_u64();
        let indices = g.btree_set_u64(1..40, 1..10);
        let chain = KeyChain::generate(&seed.to_le_bytes(), 40, Domain::F);
        let mut anchor = chain.anchor();
        // Strictly increasing subsets of disclosures must all verify.
        for &i in &indices {
            assert!(anchor.accept(chain.key(i as usize).unwrap(), i).is_ok());
        }
    });
}

#[test]
fn chain_anchor_rejects_random_keys() {
    let forged = arb_key();
    check("chain_anchor_rejects_random_keys", move |g| {
        let seed = g.any_u64();
        let forged = forged.sample(g);
        let index = g.u64_in(1..40);
        let chain = KeyChain::generate(&seed.to_le_bytes(), 40, Domain::F);
        // A random 80-bit key is on the chain with probability 2^-80.
        dap_testkit::assume(&forged != chain.key(index as usize).unwrap());
        let anchor = chain.anchor();
        assert!(anchor.verify(&forged, index).is_err());
    });
}

#[test]
fn pebbled_chain_equals_dense_chain() {
    // The pebbled store must be a pure memory/work trade-off: same seed,
    // length and domain produce the same keys, commitment and anchor as
    // the dense KeyChain, in any access order.
    check("pebbled_chain_equals_dense_chain", |g| {
        let seed = g.any_u64().to_le_bytes();
        let len = g.usize_in(1..96);
        let domain = arb_domain(g);
        let dense = KeyChain::generate(&seed, len, domain);
        let pebbled = PebbledChain::generate(&seed, len, domain);
        assert_eq!(pebbled.commitment(), *dense.commitment());
        assert_eq!(ChainStore::anchor(&pebbled), dense.anchor());
        for _ in 0..12 {
            let i = g.usize_in(0..len + 2);
            assert_eq!(pebbled.key(i), dense.key(i).copied(), "index {i}");
        }
    });
}

#[test]
fn prepared_mac_key_equals_oneshot_hmac() {
    check("prepared_mac_key_equals_oneshot_hmac", |g| {
        let key = g.bytes(0..96);
        let prepared = PreparedMacKey::new(&key);
        for _ in 0..4 {
            let msg = g.bytes(0..200);
            assert_eq!(
                prepared.mac(&msg),
                dap_crypto::hmac::hmac_sha256(&key, &msg)
            );
        }
    });
}

#[test]
fn one_way_trace_ends_where_iter_ends() {
    let key = arb_key();
    check("one_way_trace_ends_where_iter_ends", move |g| {
        let key = key.sample(g);
        let domain = arb_domain(g);
        let steps = g.usize_in(1..16);
        let trace = one_way_trace(domain, &key, steps);
        assert_eq!(trace.len(), steps);
        assert_eq!(*trace.last().unwrap(), one_way_iter(domain, &key, steps));
    });
}

#[test]
fn mac80_deterministic_and_message_binding() {
    use dap_crypto::mac::{mac80, verify_mac80};
    let key = arb_key();
    check("mac80_deterministic_and_message_binding", move |g| {
        let key = key.sample(g);
        let m1 = g.bytes(0..64);
        let m2 = g.bytes(0..64);
        let t1 = mac80(&key, &m1);
        assert!(verify_mac80(&key, &m1, &t1));
        if m1 != m2 {
            // 80-bit tags: collision probability is negligible for the
            // case counts the harness runs.
            assert_ne!(t1, mac80(&key, &m2));
        }
    });
}
