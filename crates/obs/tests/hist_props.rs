//! Property tests for the streaming histogram: on arbitrary sample
//! sets, quantiles must behave like quantiles — monotone in `p`,
//! bounded by the exact min/max, within the documented ≤ 1/16 relative
//! error of the true order statistic — and merging must equal
//! recording, so per-shard histograms can be folded without bias.

use dap_obs::Histogram;
use dap_testkit::check;

/// Arbitrary sample sets need spread across bucket scales, not just a
/// uniform draw (which would almost never land in the small exact
/// buckets): pick a magnitude, then a value within it.
fn arbitrary_samples(g: &mut dap_testkit::Gen) -> Vec<u64> {
    let n = g.usize_in(1..200);
    (0..n)
        .map(|_| {
            let bits = g.u64_in(1..64);
            g.u64_in(0..1u64 << bits)
        })
        .collect()
}

#[test]
fn quantile_is_monotone_in_p_and_bounded_by_min_max() {
    check("hist_quantile_monotone_bounded", |g| {
        let samples = arbitrary_samples(g);
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let min = h.min().expect("non-empty");
        let max = h.max().expect("non-empty");
        assert_eq!(min, *samples.iter().min().expect("non-empty"));
        assert_eq!(max, *samples.iter().max().expect("non-empty"));
        let mut prev = min;
        for i in 0..=20 {
            let q = h.quantile(f64::from(i) / 20.0).expect("non-empty");
            assert!(q >= prev, "quantile regressed: {q} < {prev} at i={i}");
            assert!((min..=max).contains(&q), "{q} outside [{min}, {max}]");
            prev = q;
        }
    });
}

#[test]
fn quantile_tracks_the_exact_order_statistic_within_a_sixteenth() {
    check("hist_quantile_relative_error", |g| {
        let samples = arbitrary_samples(g);
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &p in &[0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.quantile(p).expect("non-empty");
            // Bucket lower bound: approx ≤ exact, within one sub-bucket
            // (1/16 relative, and never more than one off absolutely).
            assert!(approx <= exact, "p={p}: {approx} > exact {exact}");
            let tolerance = (exact / 16).max(1);
            assert!(
                exact - approx <= tolerance,
                "p={p}: {approx} vs exact {exact} (tolerance {tolerance})"
            );
        }
    });
}

#[test]
fn merging_shards_equals_recording_in_one() {
    check("hist_merge_equals_record", |g| {
        let left = arbitrary_samples(g);
        let right = arbitrary_samples(g);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &s in &left {
            a.record(s);
            whole.record(s);
        }
        for &s in &right {
            b.record(s);
            whole.record(s);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal recording the union");
        assert_eq!(a.render(), whole.render());
        assert_eq!(a.count(), (left.len() + right.len()) as u64);
    });
}
