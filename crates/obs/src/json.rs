//! A minimal JSON writer for the experiment binaries and the trace
//! layer.
//!
//! The workspace builds hermetically, so there is no `serde`; the bench
//! outputs and trace records are flat objects, which this covers in a
//! few dozen lines. Strings are escaped per RFC 8259; non-finite floats
//! (which JSON cannot represent) serialise as `null`.
//!
//! Historically this lived in `dap-bench`; it moved here so the JSONL
//! trace sink could use it without a dependency cycle (`dap-bench`
//! re-exports it unchanged).

use std::fmt::Write;

/// One JSON object under construction.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, name: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        write!(self.buf, "{}:", quote(name)).expect("write to String");
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(&quote(value));
        self
    }

    /// Adds a float field (`null` when non-finite).
    #[must_use]
    pub fn f64(mut self, name: &str, value: f64) -> Self {
        self.key(name);
        if value.is_finite() {
            // `{:?}` prints a round-trippable decimal form ("1.0", not "1").
            write!(self.buf, "{value:?}").expect("write to String");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        write!(self.buf, "{value}").expect("write to String");
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, name: &str, value: bool) -> Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serialises `items` as a JSON array, one object per item, pretty
/// enough for both `jq` and diffing (one record per line).
pub fn array<T>(items: &[T], record: impl Fn(&T) -> JsonObject) -> String {
    let mut out = String::from("[\n");
    for (i, item) in items.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&record(item).finish());
        if i + 1 < items.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Quotes and escapes a string per RFC 8259.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// True when the process arguments ask for JSON output (`--json`).
#[must_use]
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builds_all_field_kinds() {
        let obj = JsonObject::new()
            .str("name", "fig7")
            .f64("p", 0.8)
            .f64("bad", f64::NAN)
            .u64("m", 14)
            .bool("saturated", false)
            .finish();
        assert_eq!(
            obj,
            r#"{"name":"fig7","p":0.8,"bad":null,"m":14,"saturated":false}"#
        );
    }

    #[test]
    fn floats_round_trip_textually() {
        let obj = JsonObject::new().f64("x", 1.0).f64("y", 0.1 + 0.2).finish();
        assert_eq!(obj, r#"{"x":1.0,"y":0.30000000000000004}"#);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn array_is_one_record_per_line() {
        let rows = [1u64, 2];
        let json = array(&rows, |r| JsonObject::new().u64("v", *r));
        assert_eq!(json, "[\n  {\"v\":1},\n  {\"v\":2}\n]");
    }

    #[test]
    fn empty_array() {
        let rows: [u64; 0] = [];
        assert_eq!(array(&rows, |r| JsonObject::new().u64("v", *r)), "[\n]");
    }
}
