//! Typed parsing of the trace JSONL stream back into [`TraceRecord`]s.
//!
//! The writer side ([`TraceRecord::to_json`]) emits a closed, canonical
//! dialect: flat objects, fixed field order, a known event vocabulary
//! and known label sets for every `&'static str` field. The parser
//! here inverts it **strictly** — unknown event names, unknown outcome
//! labels, missing or surplus fields, and malformed JSON all fail with
//! a line-numbered [`TraceParseError`] rather than being skipped. That
//! strictness is the point: the `daptrace` audit engine treats a line
//! that does not round-trip as evidence of corruption, and the
//! round-trip (`parse` → [`TraceRecord::to_json`]) is byte-exact, which
//! the test suite pins.

use std::fmt;

use crate::trace::{TraceEvent, TraceRecord};

/// A parse failure, pointing at the 1-indexed offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-indexed line number within the parsed text.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// The header line's payload ([`crate::trace::header_line`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Trace format version.
    pub version: u64,
    /// The emitting run's clock reading at trace creation (0 under
    /// frozen clocks).
    pub clock_ns: u64,
}

/// A fully parsed trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTrace {
    /// The header, when the text began with one (files written by
    /// `JsonlSink::create` do; in-memory renders do not).
    pub header: Option<TraceHeader>,
    /// Every record, in file order.
    pub records: Vec<TraceRecord>,
}

/// One scanned JSON value (the trace dialect has no nesting, floats or
/// nulls).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    U64(u64),
    Str(String),
    Bool(bool),
}

/// Parses a whole JSONL text (optional header line, then records).
///
/// # Errors
///
/// The first malformed line, with its 1-indexed line number.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, TraceParseError> {
    let mut header = None;
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let number = idx + 1;
        if line.trim().is_empty() {
            return Err(TraceParseError {
                line: number,
                reason: "blank line".to_string(),
            });
        }
        let fields = scan_object(line).map_err(|reason| TraceParseError {
            line: number,
            reason,
        })?;
        if fields.first().is_some_and(|(k, _)| k == "trace") {
            if number != 1 {
                return Err(TraceParseError {
                    line: number,
                    reason: "header after line 1".to_string(),
                });
            }
            header = Some(parse_header(&fields).map_err(|reason| TraceParseError {
                line: number,
                reason,
            })?);
            continue;
        }
        records.push(parse_record(&fields).map_err(|reason| TraceParseError {
            line: number,
            reason,
        })?);
    }
    Ok(ParsedTrace { header, records })
}

/// Parses one record line (no header accepted).
///
/// # Errors
///
/// Malformed JSON, unknown event names/labels, missing or extra fields.
pub fn parse_record_line(line: &str) -> Result<TraceRecord, TraceParseError> {
    let fields = scan_object(line).map_err(|reason| TraceParseError { line: 1, reason })?;
    parse_record(&fields).map_err(|reason| TraceParseError { line: 1, reason })
}

fn parse_header(fields: &[(String, Value)]) -> Result<TraceHeader, String> {
    expect_keys(fields, &["trace", "version", "clock_ns"])?;
    match get(fields, "trace")? {
        Value::Str(s) if s == "dap-obs" => {}
        other => return Err(format!("unexpected trace marker {other:?}")),
    }
    Ok(TraceHeader {
        version: get_u64(fields, "version")?,
        clock_ns: get_u64(fields, "clock_ns")?,
    })
}

fn parse_record(fields: &[(String, Value)]) -> Result<TraceRecord, String> {
    let src = get_u64(fields, "src")?;
    let source = u32::try_from(src).map_err(|_| format!("src {src} exceeds u32"))?;
    let seq = get_u64(fields, "seq")?;
    let at = get_u64(fields, "at")?;
    let ev = get_str(fields, "ev")?;
    const BASE: [&str; 4] = ["src", "seq", "at", "ev"];
    fn with<'a>(extra: &[&'a str]) -> Vec<&'a str> {
        BASE.iter().chain(extra).copied().collect()
    }
    let event = match ev.as_str() {
        "frame_rx" => {
            expect_keys(fields, &with(&["bytes"]))?;
            TraceEvent::FrameRx {
                bytes: get_u64(fields, "bytes")?,
            }
        }
        "verify_start" => {
            expect_keys(fields, &with(&["interval"]))?;
            TraceEvent::VerifyStart {
                interval: get_u64(fields, "interval")?,
            }
        }
        "verify_end" => {
            expect_keys(fields, &with(&["interval", "outcome", "elapsed_ns"]))?;
            TraceEvent::VerifyEnd {
                interval: get_u64(fields, "interval")?,
                outcome: intern_outcome(&get_str(fields, "outcome")?)?,
                elapsed_ns: get_u64(fields, "elapsed_ns")?,
            }
        }
        "buffer_decision" => {
            expect_keys(fields, &with(&["interval", "kept", "k", "m"]))?;
            TraceEvent::BufferDecision {
                interval: get_u64(fields, "interval")?,
                kept: get_bool(fields, "kept")?,
                k: get_u64(fields, "k")?,
                m: get_u64(fields, "m")?,
            }
        }
        "key_reveal" => {
            expect_keys(fields, &with(&["interval"]))?;
            TraceEvent::KeyReveal {
                interval: get_u64(fields, "interval")?,
            }
        }
        "shard_stall" => {
            expect_keys(fields, &with(&["shard", "depth"]))?;
            let shard = get_u64(fields, "shard")?;
            TraceEvent::ShardStall {
                shard: u32::try_from(shard).map_err(|_| format!("shard {shard} exceeds u32"))?,
                depth: get_u64(fields, "depth")?,
            }
        }
        "fault_injected" => {
            expect_keys(fields, &with(&["kind"]))?;
            TraceEvent::FaultInjected {
                kind: intern_fault_kind(&get_str(fields, "kind")?)?,
            }
        }
        "session_evicted" => {
            expect_keys(fields, &with(&["sender", "shard", "occupancy"]))?;
            let shard = get_u64(fields, "shard")?;
            TraceEvent::SessionEvicted {
                sender: get_u64(fields, "sender")?,
                shard: u32::try_from(shard).map_err(|_| format!("shard {shard} exceeds u32"))?,
                occupancy: get_u64(fields, "occupancy")?,
            }
        }
        "shed_decision" => {
            expect_keys(fields, &with(&["sender", "class", "interval"]))?;
            TraceEvent::ShedDecision {
                sender: get_u64(fields, "sender")?,
                class: intern_class(&get_str(fields, "class")?)?,
                interval: get_u64(fields, "interval")?,
            }
        }
        "posture_change" => {
            expect_keys(
                fields,
                &with(&["epoch", "from_m", "to_m", "p_permille", "give_up"]),
            )?;
            TraceEvent::PostureChange {
                epoch: get_u64(fields, "epoch")?,
                from_m: get_u64(fields, "from_m")?,
                to_m: get_u64(fields, "to_m")?,
                p_permille: get_u64(fields, "p_permille")?,
                give_up: get_bool(fields, "give_up")?,
            }
        }
        "frame_span" => {
            expect_keys(
                fields,
                &with(&[
                    "span",
                    "interval",
                    "outcome",
                    "ingress_ns",
                    "queue_ns",
                    "decode_ns",
                    "prefetch_ns",
                    "verify_ns",
                    "buffer_ns",
                    "reveal_ns",
                ]),
            )?;
            TraceEvent::FrameSpan {
                span: get_u64(fields, "span")?,
                interval: get_u64(fields, "interval")?,
                outcome: intern_outcome(&get_str(fields, "outcome")?)?,
                ingress_ns: get_u32(fields, "ingress_ns")?,
                queue_ns: get_u32(fields, "queue_ns")?,
                decode_ns: get_u32(fields, "decode_ns")?,
                prefetch_ns: get_u32(fields, "prefetch_ns")?,
                verify_ns: get_u32(fields, "verify_ns")?,
                buffer_ns: get_u32(fields, "buffer_ns")?,
                reveal_ns: get_u32(fields, "reveal_ns")?,
            }
        }
        "control_estimate" => {
            expect_keys(fields, &with(&["epoch", "sample_ppm", "p_hat_ppm"]))?;
            TraceEvent::ControlEstimate {
                epoch: get_u64(fields, "epoch")?,
                sample_ppm: get_u64(fields, "sample_ppm")?,
                p_hat_ppm: get_u64(fields, "p_hat_ppm")?,
            }
        }
        other => return Err(format!("unknown event name {other:?}")),
    };
    Ok(TraceRecord {
        source,
        seq,
        at,
        event,
    })
}

/// Maps a verify-outcome label back to the canonical `&'static str` the
/// writer used (the pool's closed outcome vocabulary).
fn intern_outcome(s: &str) -> Result<&'static str, String> {
    const OUTCOMES: [&str; 8] = [
        "stored",
        "sampled_out",
        "unsafe",
        "auth",
        "weak_rejected",
        "strong_rejected",
        "no_candidate",
        "no_match",
    ];
    OUTCOMES
        .into_iter()
        .find(|o| *o == s)
        .ok_or_else(|| format!("unknown outcome label {s:?}"))
}

fn intern_fault_kind(s: &str) -> Result<&'static str, String> {
    const KINDS: [&str; 2] = ["wire.loss", "wire.corrupt"];
    KINDS
        .into_iter()
        .find(|k| *k == s)
        .ok_or_else(|| format!("unknown fault kind {s:?}"))
}

fn intern_class(s: &str) -> Result<&'static str, String> {
    const CLASSES: [&str; 3] = ["pinned", "high", "low"];
    CLASSES
        .into_iter()
        .find(|c| *c == s)
        .ok_or_else(|| format!("unknown priority class {s:?}"))
}

fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(fields: &[(String, Value)], key: &str) -> Result<u64, String> {
    match get(fields, key)? {
        Value::U64(v) => Ok(*v),
        other => Err(format!("field {key:?} is not an integer: {other:?}")),
    }
}

/// A `u32` field (the span stage timings). A value past `u32::MAX` is
/// rejected rather than silently truncated: the writer saturates at
/// the type bound, so anything wider is not a value this writer
/// produced — corruption evidence, same as an unknown label.
fn get_u32(fields: &[(String, Value)], key: &str) -> Result<u32, String> {
    let v = get_u64(fields, key)?;
    u32::try_from(v).map_err(|_| format!("field {key:?} out of range: {v}"))
}

fn get_str(fields: &[(String, Value)], key: &str) -> Result<String, String> {
    match get(fields, key)? {
        Value::Str(v) => Ok(v.clone()),
        other => Err(format!("field {key:?} is not a string: {other:?}")),
    }
}

fn get_bool(fields: &[(String, Value)], key: &str) -> Result<bool, String> {
    match get(fields, key)? {
        Value::Bool(v) => Ok(*v),
        other => Err(format!("field {key:?} is not a bool: {other:?}")),
    }
}

/// Strict field-set check: exactly `expected`, no more, no less (order
/// is not enforced — `to_json` fixes it on re-render anyway).
fn expect_keys(fields: &[(String, Value)], expected: &[&str]) -> Result<(), String> {
    for key in expected {
        get(fields, key)?;
    }
    if let Some((extra, _)) = fields.iter().find(|(k, _)| !expected.contains(&k.as_str())) {
        return Err(format!("unexpected field {extra:?}"));
    }
    if fields.len() != expected.len() {
        return Err("duplicate field".to_string());
    }
    Ok(())
}

/// Scans one flat JSON object into `(key, value)` pairs. Handles the
/// trace dialect only: string/integer/bool values, RFC 8259 string
/// escapes, no nesting, no floats.
fn scan_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let text = line.trim();
    let mut fields = Vec::new();
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("expected '{'".to_string()),
    }
    // Empty object?
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
        return match chars.next() {
            None => Ok(fields),
            Some(_) => Err("trailing bytes after '}'".to_string()),
        };
    }
    loop {
        let key = match chars.next() {
            Some((start, '"')) => scan_string(text, start, &mut chars)?,
            other => return Err(format!("expected key string, got {other:?}")),
        };
        match chars.next() {
            Some((_, ':')) => {}
            other => return Err(format!("expected ':', got {other:?}")),
        }
        let value = match chars.peek().copied() {
            Some((start, '"')) => {
                chars.next();
                Value::Str(scan_string(text, start, &mut chars)?)
            }
            Some((start, c)) if c.is_ascii_digit() => {
                let mut end = start;
                while let Some(&(i, c)) = chars.peek() {
                    if c.is_ascii_digit() {
                        end = i;
                        chars.next();
                    } else {
                        break;
                    }
                }
                let digits = &text[start..=end];
                Value::U64(
                    digits
                        .parse()
                        .map_err(|_| format!("bad integer {digits:?}"))?,
                )
            }
            Some((start, 't' | 'f')) => {
                let rest = &text[start..];
                if rest.starts_with("true") {
                    for _ in 0..4 {
                        chars.next();
                    }
                    Value::Bool(true)
                } else if rest.starts_with("false") {
                    for _ in 0..5 {
                        chars.next();
                    }
                    Value::Bool(false)
                } else {
                    return Err("bad literal".to_string());
                }
            }
            other => return Err(format!("unexpected value start {other:?}")),
        };
        fields.push((key, value));
        match chars.next() {
            Some((_, ',')) => {}
            Some((_, '}')) => {
                return match chars.next() {
                    None => Ok(fields),
                    Some(_) => Err("trailing bytes after '}'".to_string()),
                };
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Scans a JSON string whose opening quote was already consumed at byte
/// offset `start`; leaves the iterator just past the closing quote.
fn scan_string(
    text: &str,
    start: usize,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Result<String, String> {
    let _ = (text, start);
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, c) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + c.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{header_line, render_jsonl};

    fn roundtrip_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::FrameRx { bytes: 9 },
            TraceEvent::VerifyStart { interval: 2 },
            TraceEvent::VerifyEnd {
                interval: 2,
                outcome: "strong_rejected",
                elapsed_ns: 5,
            },
            TraceEvent::BufferDecision {
                interval: 2,
                kept: false,
                k: 7,
                m: 4,
            },
            TraceEvent::KeyReveal { interval: 2 },
            TraceEvent::ShardStall {
                shard: 1,
                depth: 64,
            },
            TraceEvent::FaultInjected {
                kind: "wire.corrupt",
            },
            TraceEvent::SessionEvicted {
                sender: 17,
                shard: 1,
                occupancy: 63,
            },
            TraceEvent::ShedDecision {
                sender: 17,
                class: "pinned",
                interval: 2,
            },
            TraceEvent::PostureChange {
                epoch: 1,
                from_m: 4,
                to_m: 13,
                p_permille: 800,
                give_up: true,
            },
            TraceEvent::FrameSpan {
                span: (3 << 8) | 1,
                interval: 9,
                outcome: "auth",
                ingress_ns: 1,
                queue_ns: 2,
                decode_ns: 3,
                prefetch_ns: 4,
                verify_ns: 0,
                buffer_ns: 5,
                reveal_ns: 6,
            },
            TraceEvent::ControlEstimate {
                epoch: 2,
                sample_ppm: 900_000,
                p_hat_ppm: 123_456,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_byte_exactly() {
        let records: Vec<TraceRecord> = roundtrip_events()
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                source: 3,
                seq: i as u64,
                at: 10 * i as u64,
                event,
            })
            .collect();
        let rendered = render_jsonl(&records);
        let parsed = parse_trace(&rendered).expect("canonical text parses");
        assert_eq!(parsed.header, None);
        assert_eq!(parsed.records, records);
        assert_eq!(render_jsonl(&parsed.records), rendered);
    }

    #[test]
    fn header_line_parses_and_survives_reround() {
        let text = format!("{}\n", header_line(712));
        let parsed = parse_trace(&text).expect("header parses");
        assert_eq!(
            parsed.header,
            Some(TraceHeader {
                version: 2,
                clock_ns: 712
            })
        );
        assert!(parsed.records.is_empty());
    }

    #[test]
    fn corruption_is_flagged_with_the_line_number() {
        let good = TraceRecord {
            source: 0,
            seq: 0,
            at: 7,
            event: TraceEvent::VerifyEnd {
                interval: 1,
                outcome: "auth",
                elapsed_ns: 0,
            },
        };
        let text = render_jsonl(&[good.clone(), good]);
        // Corrupt the second line: an outcome outside the vocabulary.
        let corrupted = {
            let mut lines: Vec<&str> = text.lines().collect();
            let bad = lines[1].replace("\"outcome\":\"auth\"", "\"outcome\":\"hacked\"");
            lines[1] = &bad;
            format!("{}\n", lines.join("\n"))
        };
        let err = parse_trace(&corrupted).expect_err("corruption must fail");
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("hacked"), "{err}");
    }

    #[test]
    fn truncated_and_malformed_lines_fail() {
        assert!(parse_trace("{\"src\":0,\"seq\":0").is_err());
        assert!(parse_trace("not json at all\n").is_err());
        assert!(parse_trace("{\"src\":0,\"seq\":0,\"at\":0,\"ev\":\"nope\"}\n").is_err());
        // Surplus fields are rejected, not ignored.
        assert!(parse_trace(
            "{\"src\":0,\"seq\":0,\"at\":0,\"ev\":\"key_reveal\",\"interval\":1,\"x\":2}\n"
        )
        .is_err());
        // A record stream never contains a second header.
        let two_headers = format!("{}\n{}\n", header_line(0), header_line(0));
        assert!(parse_trace(&two_headers).is_err());
    }
}
