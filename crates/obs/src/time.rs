//! Time for instrumentation: wall-clock on the wire, tick-driven in
//! deterministic runs.
//!
//! The rule the whole observability plane follows: a latency
//! measurement must never make a fingerprinted run irreproducible. So
//! every stopwatch reads a [`TimeSource`] — real `Instant`s in live UDP
//! runs and benches, a [`ManualTime`] (an explicitly advanced atomic
//! nanosecond counter, usually left at zero) in the seeded loopback
//! campaigns — and the instrumentation code is identical either way.
//! Under manual time every duration comes out as a deterministic
//! constant, so histogram *counts* still fingerprint the run while the
//! recorded durations carry no scheduler noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An explicitly advanced nanosecond clock; clones share the counter.
#[derive(Debug, Clone, Default)]
pub struct ManualTime {
    ns: Arc<AtomicU64>,
}

impl ManualTime {
    /// A manual clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current reading.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }

    /// Jumps the clock to `ns` (monotonicity is the caller's contract).
    pub fn set_ns(&self, ns: u64) {
        self.ns.store(ns, Ordering::SeqCst);
    }

    /// Advances the clock by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::SeqCst);
    }
}

/// Where instrumentation reads time from.
#[derive(Debug, Clone)]
pub enum TimeSource {
    /// Wall clock: nanoseconds since this source was created.
    Wall {
        /// The creation instant all readings are relative to.
        epoch: Instant,
    },
    /// A shared [`ManualTime`] — deterministic runs and tests.
    Manual(ManualTime),
}

impl TimeSource {
    /// A wall-clock source anchored now.
    #[must_use]
    pub fn wall() -> Self {
        Self::Wall {
            epoch: Instant::now(),
        }
    }

    /// A source over an existing manual clock.
    #[must_use]
    pub fn manual(clock: ManualTime) -> Self {
        Self::Manual(clock)
    }

    /// A manual source frozen at zero — the deterministic-campaign
    /// posture: every stopwatch reads an elapsed time of exactly 0.
    #[must_use]
    pub fn frozen() -> Self {
        Self::Manual(ManualTime::new())
    }

    /// Nanoseconds on this source's clock.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        match self {
            Self::Wall { epoch } => u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Self::Manual(clock) => clock.now_ns(),
        }
    }

    /// Whether this source reads the wall clock. Scheduler-dependent
    /// observables (queue occupancy sampled by a worker) must only be
    /// recorded when this is true, or two same-seed runs diverge.
    #[must_use]
    pub fn is_wall(&self) -> bool {
        matches!(self, Self::Wall { .. })
    }

    /// Starts a stopwatch on this source.
    #[must_use]
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch {
            start_ns: self.now_ns(),
        }
    }
}

/// A start reading; elapsed time is computed against the same source.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Nanoseconds since the stopwatch started, on `source`'s clock
    /// (saturating at zero if the source went backwards).
    #[must_use]
    pub fn elapsed_ns(&self, source: &TimeSource) -> u64 {
        source.now_ns().saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_time_is_shared_and_explicit() {
        let clock = ManualTime::new();
        let source = TimeSource::manual(clock.clone());
        let sw = source.stopwatch();
        assert_eq!(sw.elapsed_ns(&source), 0);
        clock.advance_ns(250);
        assert_eq!(sw.elapsed_ns(&source), 250);
        clock.set_ns(1_000);
        assert_eq!(source.now_ns(), 1_000);
        assert!(!source.is_wall());
    }

    #[test]
    fn frozen_source_always_reads_zero_elapsed() {
        let source = TimeSource::frozen();
        let sw = source.stopwatch();
        assert_eq!(sw.elapsed_ns(&source), 0);
        assert_eq!(source.now_ns(), 0);
    }

    #[test]
    fn wall_source_advances() {
        let source = TimeSource::wall();
        assert!(source.is_wall());
        let sw = source.stopwatch();
        // Burn a little real time; the reading must be monotone.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let a = sw.elapsed_ns(&source);
        let b = sw.elapsed_ns(&source);
        assert!(b >= a);
    }
}
