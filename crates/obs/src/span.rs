//! Frame-lifecycle stage timing: the flight recorder's allocation-free
//! per-frame accumulator.
//!
//! A [`SpanTimer`] splits one frame's trip through the verify pipeline
//! into the seven canonical stages ([`SpanStage`]): ingress routing,
//! queue wait, decode, batch prefetch, verify, buffer decision and
//! reveal-authenticate. Contiguous stages are accumulated with
//! [`SpanTimer::mark`] (reads the [`TimeSource`] once per boundary);
//! stages measured elsewhere — the reader-side ingress cost, the
//! amortised prefetch share — are injected with [`SpanTimer::set`].
//! The struct is a fixed-size array on the worker's stack: recording a
//! span never allocates, so a flood cannot turn the recorder into an
//! allocator attack on the defender.
//!
//! Under frozen or manual clocks every duration is exactly the clock's
//! own arithmetic — which is what makes the stage-ordering property
//! below testable and two same-seed runs byte-identical.

use crate::time::TimeSource;
use crate::trace::TraceEvent;

/// The pipeline stages a frame crosses, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStage {
    /// Reader-side routing + copy, before the shard queue.
    Ingress,
    /// Enqueue → worker-pop wait.
    QueueWait,
    /// Datagram decode / frame reassembly.
    Decode,
    /// The frame's share of its window's batch prefetch.
    Prefetch,
    /// Announce-path verification.
    Verify,
    /// Reservoir-decision bookkeeping.
    Buffer,
    /// Reveal-path authentication.
    RevealAuth,
}

impl SpanStage {
    /// How many stages exist.
    pub const COUNT: usize = 7;

    /// Every stage, in pipeline order.
    pub const ALL: [SpanStage; SpanStage::COUNT] = [
        SpanStage::Ingress,
        SpanStage::QueueWait,
        SpanStage::Decode,
        SpanStage::Prefetch,
        SpanStage::Verify,
        SpanStage::Buffer,
        SpanStage::RevealAuth,
    ];

    /// The stage's stable label (used in reports and histogram keys).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanStage::Ingress => "ingress",
            SpanStage::QueueWait => "queue_wait",
            SpanStage::Decode => "decode",
            SpanStage::Prefetch => "prefetch",
            SpanStage::Verify => "verify",
            SpanStage::Buffer => "buffer",
            SpanStage::RevealAuth => "reveal_auth",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanStage::Ingress => 0,
            SpanStage::QueueWait => 1,
            SpanStage::Decode => 2,
            SpanStage::Prefetch => 3,
            SpanStage::Verify => 4,
            SpanStage::Buffer => 5,
            SpanStage::RevealAuth => 6,
        }
    }
}

/// A deterministic span id: the shard's verified-datagram ordinal in
/// the high bits, the frame's index within its (possibly packed)
/// datagram in the low 8. The emitting record's source field carries
/// the shard, so `(source, span)` is globally unique and two same-seed
/// runs agree on every id.
#[must_use]
pub fn span_id(datagram_ordinal: u64, frame_idx: usize) -> u64 {
    (datagram_ordinal << 8) | (frame_idx as u64 & 0xff)
}

/// Per-frame stage accumulator; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    last_ns: u64,
    acc: [u64; SpanStage::COUNT],
}

impl SpanTimer {
    /// A timer anchored at `time`'s current reading.
    #[must_use]
    pub fn start(time: &TimeSource) -> Self {
        Self {
            last_ns: time.now_ns(),
            acc: [0; SpanStage::COUNT],
        }
    }

    /// Closes the window since the previous boundary (or
    /// [`SpanTimer::start`]) and charges it to `stage`. Marking the
    /// same stage repeatedly accumulates.
    pub fn mark(&mut self, stage: SpanStage, time: &TimeSource) {
        let now = time.now_ns();
        self.acc[stage.index()] += now.saturating_sub(self.last_ns);
        self.last_ns = now;
    }

    /// Injects a duration measured elsewhere (overwrites the stage).
    pub fn set(&mut self, stage: SpanStage, ns: u64) {
        self.acc[stage.index()] = ns;
    }

    /// The accumulated duration of `stage`.
    #[must_use]
    pub fn get(&self, stage: SpanStage) -> u64 {
        self.acc[stage.index()]
    }

    /// Sum over every stage.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.acc.iter().sum()
    }

    /// The finished [`TraceEvent::FrameSpan`] for this frame. Stage
    /// readings saturate into the event's `u32` fields.
    #[must_use]
    pub fn event(&self, span: u64, interval: u64, outcome: &'static str) -> TraceEvent {
        let ns = |stage| u32::try_from(self.get(stage)).unwrap_or(u32::MAX);
        TraceEvent::FrameSpan {
            span,
            interval,
            outcome,
            ingress_ns: ns(SpanStage::Ingress),
            queue_ns: ns(SpanStage::QueueWait),
            decode_ns: ns(SpanStage::Decode),
            prefetch_ns: ns(SpanStage::Prefetch),
            verify_ns: ns(SpanStage::Verify),
            buffer_ns: ns(SpanStage::Buffer),
            reveal_ns: ns(SpanStage::RevealAuth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ManualTime;

    /// A tiny deterministic generator (SplitMix64) so the property runs
    /// the same cases on every box without pulling in an RNG crate.
    struct Gen(u64);

    impl Gen {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn marks_accumulate_exactly_what_the_manual_clock_advanced() {
        let clock = ManualTime::new();
        let time = TimeSource::manual(clock.clone());
        let mut timer = SpanTimer::start(&time);
        clock.advance_ns(7);
        timer.mark(SpanStage::Decode, &time);
        clock.advance_ns(5);
        timer.mark(SpanStage::Decode, &time);
        clock.advance_ns(100);
        timer.mark(SpanStage::Verify, &time);
        timer.set(SpanStage::Prefetch, 42);
        assert_eq!(timer.get(SpanStage::Decode), 12);
        assert_eq!(timer.get(SpanStage::Verify), 100);
        assert_eq!(timer.get(SpanStage::Prefetch), 42);
        assert_eq!(timer.get(SpanStage::Buffer), 0);
        assert_eq!(timer.total_ns(), 154);
    }

    /// The satellite property: stage boundaries are monotone under
    /// manual time. Marking the stages in pipeline order with arbitrary
    /// seeded clock advances, (a) each stage is charged exactly what
    /// the clock advanced inside it, (b) the cumulative stage-end
    /// offsets are non-decreasing in pipeline order, and (c) the stages
    /// sum to the whole observed window — no time is lost or invented.
    #[test]
    fn stage_ordering_is_monotone_under_manual_time() {
        for case in 0u64..64 {
            let mut gen = Gen(0x00F1_1C47 ^ (case << 16));
            let clock = ManualTime::new();
            clock.set_ns(gen.next() % 1_000_000);
            let time = TimeSource::manual(clock.clone());
            let start = time.now_ns();
            let mut timer = SpanTimer::start(&time);
            let mut expected = [0u64; SpanStage::COUNT];
            for (idx, stage) in SpanStage::ALL.into_iter().enumerate() {
                // 0–3 sub-steps per stage, arbitrary advances each.
                for _ in 0..gen.next() % 4 {
                    let step = gen.next() % 10_000;
                    clock.advance_ns(step);
                    expected[idx] += step;
                    timer.mark(stage, &time);
                }
                // A stage with no sub-step still gets a zero-width mark.
                timer.mark(stage, &time);
            }
            let mut cumulative = 0u64;
            let mut boundaries = Vec::new();
            for (idx, stage) in SpanStage::ALL.into_iter().enumerate() {
                assert_eq!(timer.get(stage), expected[idx], "case {case} {stage:?}");
                cumulative += timer.get(stage);
                boundaries.push(cumulative);
            }
            assert!(
                boundaries.windows(2).all(|w| w[0] <= w[1]),
                "case {case}: stage-end offsets must be monotone: {boundaries:?}"
            );
            assert_eq!(timer.total_ns(), time.now_ns() - start, "case {case}");
        }
    }

    #[test]
    fn span_ids_pack_ordinal_and_frame_index() {
        assert_eq!(span_id(0, 0), 0);
        assert_eq!(span_id(3, 1), (3 << 8) | 1);
        // Frame index saturates into 8 bits; ordinals never collide.
        assert_eq!(span_id(1, 256), 1 << 8);
        assert!(span_id(7, 255) < span_id(8, 0));
    }

    #[test]
    fn event_carries_every_stage_field() {
        let time = TimeSource::frozen();
        let mut timer = SpanTimer::start(&time);
        timer.set(SpanStage::Ingress, 1);
        timer.set(SpanStage::QueueWait, 2);
        timer.set(SpanStage::Decode, 3);
        timer.set(SpanStage::Prefetch, 4);
        timer.set(SpanStage::Verify, 5);
        timer.set(SpanStage::Buffer, 6);
        timer.set(SpanStage::RevealAuth, 7);
        let event = timer.event(span_id(9, 0), 17, "auth");
        assert_eq!(
            event,
            TraceEvent::FrameSpan {
                span: 9 << 8,
                interval: 17,
                outcome: "auth",
                ingress_ns: 1,
                queue_ns: 2,
                decode_ns: 3,
                prefetch_ns: 4,
                verify_ns: 5,
                buffer_ns: 6,
                reveal_ns: 7,
            }
        );
    }
}
