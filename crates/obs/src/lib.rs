//! # dap-obs — the observability plane
//!
//! The paper's claims are distributional — buffer survival `1 − p^m`,
//! verify cost under flood — so sums are not enough: this crate gives
//! every layer of the workspace the same vocabulary for *distributions*
//! and *event sequences*, without pulling in a single dependency (the
//! workspace builds hermetically) and without breaking the seeded
//! bit-reproducibility the chaos and soak gates rely on.
//!
//! The pieces:
//!
//! * [`hist`] — an allocation-free log2-bucketed streaming
//!   [`Histogram`] (HDR-style: 64 major buckets × 16 linear sub-buckets
//!   cover all of `u64` at ≤ 1/16 relative error) with `record`,
//!   `merge`, `quantile` and a byte-stable `render`;
//! * [`gauge`] — [`Gauge`], a last/min/max sample tracker;
//! * [`time`] — [`TimeSource`]: wall-clock `Instant` on the wire, a
//!   tick-driven [`ManualTime`] in sim and tests, and [`Stopwatch`]
//!   over either, so latency instrumentation can stay in place while a
//!   deterministic run records all-zero durations instead of
//!   scheduler noise;
//! * [`trace`] — typed [`TraceEvent`]s behind a [`TraceSink`] trait
//!   (bounded ring buffer or JSONL file), each record carrying a
//!   per-source monotone sequence number so interleavings from a
//!   sharded pool can be totally ordered and replay-diffed;
//! * [`json`] — the minimal JSON writer the bench binaries use (moved
//!   here from `dap-bench` so the trace layer can sit below it;
//!   `dap_bench::json` re-exports it unchanged).
//!
//! Determinism rule of thumb: anything that feeds a fingerprint must be
//! derived from protocol state (interval indices, frame ordinals, seeded
//! draws) or from a [`ManualTime`]; wall-clock readings are for live
//! runs and bench reports only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gauge;
pub mod hist;
pub mod json;
pub mod time;
pub mod trace;

pub use gauge::Gauge;
pub use hist::Histogram;
pub use time::{ManualTime, Stopwatch, TimeSource};
pub use trace::{
    render_jsonl, sort_records, JsonlSink, NullSink, RingSink, TraceEmitter, TraceEvent,
    TraceRecord, TraceSink,
};
