//! # dap-obs — the observability plane
//!
//! The paper's claims are distributional — buffer survival `1 − p^m`,
//! verify cost under flood — so sums are not enough: this crate gives
//! every layer of the workspace the same vocabulary for *distributions*
//! and *event sequences*, without pulling in a single dependency (the
//! workspace builds hermetically) and without breaking the seeded
//! bit-reproducibility the chaos and soak gates rely on.
//!
//! The pieces:
//!
//! * [`hist`] — an allocation-free log2-bucketed streaming
//!   [`Histogram`] (HDR-style: 64 major buckets × 16 linear sub-buckets
//!   cover all of `u64` at ≤ 1/16 relative error) with `record`,
//!   `merge`, `quantile` and a byte-stable `render`;
//! * [`gauge`] — [`Gauge`], a last/min/max sample tracker;
//! * [`time`] — [`TimeSource`]: wall-clock `Instant` on the wire, a
//!   tick-driven [`ManualTime`] in sim and tests, and [`Stopwatch`]
//!   over either, so latency instrumentation can stay in place while a
//!   deterministic run records all-zero durations instead of
//!   scheduler noise;
//! * [`trace`] — typed [`TraceEvent`]s behind a [`TraceSink`] trait
//!   (bounded ring buffer or JSONL file), each record carrying a
//!   per-source monotone sequence number so interleavings from a
//!   sharded pool can be totally ordered and replay-diffed;
//! * [`json`] — the minimal JSON writer the bench binaries use (moved
//!   here from `dap-bench` so the trace layer can sit below it;
//!   `dap_bench::json` re-exports it unchanged);
//! * [`span`] — the flight recorder's per-frame stage accumulator:
//!   [`SpanTimer`] charges wall (or manual) time to the seven pipeline
//!   stages and folds into a [`TraceEvent::FrameSpan`], with
//!   deterministic ids from [`span_id`];
//! * [`parse`] — the strict inverse of the JSONL writer:
//!   [`parse_trace`] turns a trace file back into typed
//!   [`TraceRecord`]s, rejecting any line that would not round-trip
//!   byte-exactly (the `daptrace` audit engine's corruption detector).
//!
//! Determinism rule of thumb: anything that feeds a fingerprint must be
//! derived from protocol state (interval indices, frame ordinals, seeded
//! draws) or from a [`ManualTime`]; wall-clock readings are for live
//! runs and bench reports only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gauge;
pub mod hist;
pub mod json;
pub mod parse;
pub mod span;
pub mod time;
pub mod trace;

pub use gauge::Gauge;
pub use hist::Histogram;
pub use parse::{parse_record_line, parse_trace, ParsedTrace, TraceHeader, TraceParseError};
pub use span::{span_id, SpanStage, SpanTimer};
pub use time::{ManualTime, Stopwatch, TimeSource};
pub use trace::{
    header_line, render_jsonl, sort_records, JsonlSink, NullSink, RingSink, TraceEmitter,
    TraceEvent, TraceRecord, TraceSink,
};
