//! A log2-bucketed streaming histogram over `u64` samples.
//!
//! HDR-histogram layout, fixed at compile time: 64 major buckets (one
//! per bit length) each split into 16 linear sub-buckets, so any `u64`
//! lands in one of 1024 slots with at most 1/16 relative error. The
//! counts live in a flat inline array — recording is a shift, a mask
//! and two saturating adds, with no allocation and no floating point —
//! which is what lets the hot paths (per-frame verify latency in the
//! sharded pool) keep one of these per shard without feeling it.

/// Sub-buckets per major bucket (linear interpolation within a power
/// of two).
const SUBS: usize = 16;
/// Major buckets — one per possible bit length of a `u64`.
const MAJORS: usize = 64;
/// Total slots.
const SLOTS: usize = MAJORS * SUBS;

/// The slot a value lands in. Values below 16 get exact slots; a value
/// with bit length `n ≥ 5` lands in major `n − 4`, sub-bucket = its top
/// four bits after the leading one.
fn slot_of(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let n = 64 - v.leading_zeros(); // bit length, 5..=64
    let major = (n - 4) as usize; // 1..=60
    let sub = ((v >> (n - 5)) & 0xf) as usize;
    major * SUBS + sub
}

/// The smallest value that maps to `slot` — the representative a
/// quantile query reports (so reported quantiles never exceed what was
/// recorded into the slot).
fn slot_lower_bound(slot: usize) -> u64 {
    let major = slot / SUBS;
    let sub = (slot % SUBS) as u64;
    if major == 0 {
        sub
    } else {
        (16 + sub) << (major - 1)
    }
}

/// A fixed-layout streaming histogram: `record` and `merge` never
/// allocate, counts saturate instead of wrapping, and [`render`]
/// produces a byte-stable line so snapshots can be diffed.
///
/// [`render`]: Histogram::render
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; SLOTS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; SLOTS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Counts and the running sum saturate at
    /// `u64::MAX` rather than wrapping.
    pub fn record(&mut self, v: u64) {
        let slot = slot_of(v);
        self.counts[slot] = self.counts[slot].saturating_add(1);
        self.total = self.total.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` occurrences of the same sample in one step.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let slot = slot_of(v);
        self.counts[slot] = self.counts[slot].saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one (slot-wise saturating
    /// sums; min/max combine exactly).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether anything has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Saturating sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact largest sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// The value at quantile `p ∈ [0, 1]`: the bucket lower bound at
    /// rank `⌈p·count⌉`, clamped into `[min, max]` so the answer is
    /// always a value the data could have contained. `None` when the
    /// histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics when `p` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Option<u64> {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile needs p in [0,1], got {p}"
        );
        if self.total == 0 {
            return None;
        }
        // ⌈p·total⌉ as a rank in 1..=total (p = 0 reads the first sample).
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen: u64 = 0;
        for (slot, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(slot_lower_bound(slot).clamp(self.min, self.max));
            }
        }
        // Saturated counts can leave `seen` short of a saturated total.
        Some(self.max)
    }

    /// A byte-stable one-line summary: integers only, fixed field
    /// order, so two equal histograms render identically and the
    /// rendering is diffable across runs.
    #[must_use]
    pub fn render(&self) -> String {
        if self.total == 0 {
            return "count=0".to_string();
        }
        let q = |p| self.quantile(p).expect("non-empty");
        format!(
            "count={} sum={} min={} p50={} p95={} p99={} max={}",
            self.total,
            self.sum,
            self.min,
            q(0.50),
            q(0.95),
            q(0.99),
            self.max
        )
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram({})", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.render(), "count=0");
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(1234);
        for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
            // One sample: every quantile clamps into [min, max] = {1234}.
            assert_eq!(h.quantile(p), Some(1234), "p = {p}");
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1234);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
        // Rank 8 of 16 at p = 0.5 is the value 7 (exact slots below 16).
        assert_eq!(h.quantile(0.5), Some(7));
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        for exp in 4..40 {
            let v = (1u64 << exp) + (1 << (exp - 2)) + 3;
            h.record(v);
            let q = {
                let mut one = Histogram::new();
                one.record(v);
                one.quantile(0.5).unwrap()
            };
            // Bucket lower bound: within one sub-bucket (1/16) below v.
            assert!(q <= v, "q {q} above v {v}");
            assert!(v - q <= v / 16 + 1, "q {q} too far below v {v}");
        }
    }

    #[test]
    fn saturating_record_at_u64_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.max(), Some(u64::MAX));
        // The quantile clamps to the exact max even though the slot's
        // lower bound is far below u64::MAX.
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        h.record_n(1, u64::MAX);
        assert_eq!(h.count(), u64::MAX, "count saturates");
    }

    #[test]
    fn merge_of_disjoint_ranges() {
        let mut low = Histogram::new();
        for v in 1..=100u64 {
            low.record(v);
        }
        let mut high = Histogram::new();
        for v in 1_000_000..1_000_100u64 {
            high.record(v);
        }
        let mut merged = low.clone();
        merged.merge(&high);
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.min(), Some(1));
        assert_eq!(merged.max(), Some(1_000_099));
        assert_eq!(merged.sum(), low.sum() + high.sum());
        // The lower half of the merged mass is the low histogram.
        assert!(merged.quantile(0.25).unwrap() <= 100);
        assert!(merged.quantile(0.75).unwrap() >= 1_000_000 * 15 / 16);
        // Merging in the other order gives the same histogram.
        let mut other = high.clone();
        other.merge(&low);
        assert_eq!(merged, other);
    }

    #[test]
    fn render_is_byte_stable() {
        let run = || {
            let mut h = Histogram::new();
            for v in [5u64, 17, 90, 1 << 20, 3] {
                h.record(v);
            }
            h.render()
        };
        assert_eq!(run(), run());
        assert!(run().starts_with("count=5 sum="));
    }

    #[test]
    #[should_panic(expected = "quantile needs p in [0,1]")]
    fn quantile_rejects_out_of_range_p() {
        let mut h = Histogram::new();
        h.record(1);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn every_u64_has_a_slot_and_bound_below() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            u64::from(u32::MAX),
            1 << 60,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let s = slot_of(v);
            assert!(s < SLOTS, "slot {s} out of range for {v}");
            assert!(slot_lower_bound(s) <= v, "bound above value {v}");
        }
    }
}
