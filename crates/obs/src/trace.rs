//! Structured tracing: typed events, per-source monotone sequence
//! numbers, pluggable sinks.
//!
//! Every record names its *source* (a shard index, the wire, the socket
//! reader) and carries that source's own monotone sequence number. Two
//! same-seed runs of the sharded pool interleave work differently
//! across threads, but each source's event *sequence* is deterministic
//! — so sorting the collected records by `(source, seq)`
//! ([`sort_records`]) produces a total order that is byte-identical
//! across runs, which is what the ci.sh telemetry gate diffs.
//!
//! The `at` field is protocol time (the simulator-tick timestamp the
//! frame was ingested at, or a source-specific ordinal for the wire) —
//! **not** wall time, which would destroy reproducibility. The header
//! line [`JsonlSink::create`] writes stamps its timestamp from the
//! run's own [`TimeSource`], so a deterministic (frozen-clock) run
//! renders a byte-identical *whole file*, header included.

use std::io::{self, Write};

use crate::json::JsonObject;
use crate::time::TimeSource;

/// One typed trace event. Fields are the data a replay-diff needs to
/// explain a divergence, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame arrived at a shard (payload length in bytes).
    FrameRx {
        /// Datagram length in bytes.
        bytes: u64,
    },
    /// Verification of a decoded frame is starting.
    VerifyStart {
        /// The interval index the frame claims.
        interval: u64,
    },
    /// Verification finished.
    VerifyEnd {
        /// The interval index the frame claims.
        interval: u64,
        /// Outcome label (`"stored"`, `"auth"`, `"unsafe"`, …).
        outcome: &'static str,
        /// Stopwatch reading (0 under manual time).
        elapsed_ns: u64,
    },
    /// A reservoir buffer decided an announce's fate.
    BufferDecision {
        /// The interval whose pool decided.
        interval: u64,
        /// Whether the μMAC was kept (stored or replaced an entry).
        kept: bool,
        /// Offers this interval's pool has seen so far (the paper's `k`).
        k: u64,
        /// Pool capacity (the paper's `m`).
        m: u64,
    },
    /// A reveal disclosed a chain key.
    KeyReveal {
        /// The revealed interval.
        interval: u64,
    },
    /// A shard's ingress queue rejected a frame (DropCount posture).
    ShardStall {
        /// Which shard stalled.
        shard: u32,
        /// Queue occupancy at the moment of rejection.
        depth: u64,
    },
    /// The medium injected a fault (loss, corruption, …).
    FaultInjected {
        /// Fault label (`"wire.loss"`, `"wire.corrupt"`, …).
        kind: &'static str,
    },
    /// A session table evicted a sender's per-session state to stay
    /// inside its memory budget.
    SessionEvicted {
        /// The evicted sender's id.
        sender: u64,
        /// The shard that owns the table.
        shard: u32,
        /// Sessions still resident after the eviction.
        occupancy: u64,
    },
    /// The priority drain shed a frame at a window flush: the shard's
    /// per-window verify budget was exhausted by higher-priority (or
    /// earlier) frames. Attribution is by the frame's *claimed* sender —
    /// wire tags are unauthenticated, so a shed forged frame charges the
    /// class of the sender it impersonated.
    ShedDecision {
        /// The claimed sender id of the shed frame.
        sender: u64,
        /// The claimed sender's priority class label at flush time.
        class: &'static str,
        /// The interval the shed frame claimed.
        interval: u64,
    },
    /// The control plane re-sized a shard's defensive posture: the
    /// online game solver picked a new reservoir count (or flipped the
    /// §V give-up switch) from the live forged-fraction estimate.
    PostureChange {
        /// The control-plane epoch (monotone per run; one per directive).
        epoch: u64,
        /// Reservoir capacity before the change.
        from_m: u64,
        /// Reservoir capacity after the change.
        to_m: u64,
        /// The forged-fraction estimate (permille) that drove the solve.
        p_permille: u64,
        /// Whether the solver declared the §V give-up regime.
        give_up: bool,
    },
    /// The flight recorder's per-frame lifecycle summary: one sampled
    /// frame's stage-attributed timing across the whole pipeline
    /// (ingress → queue-wait → decode → prefetch → verify → buffer →
    /// reveal-authenticate). The span id is deterministic — the shard's
    /// verified-datagram ordinal shifted left 8 bits, plus the frame's
    /// index within its datagram — so two same-seed runs narrate the
    /// same spans. All `*_ns` fields collapse to 0 under frozen clocks.
    ///
    /// Stage timings are `u32` nanoseconds (saturating at ~4.29 s): the
    /// span is the hottest record on the verify path — one per frame —
    /// and the narrower fields keep the ring slot, and with it the
    /// recorder's per-frame memory traffic, small. A stage that truly
    /// runs past 4 s is an outage, not a latency sample.
    FrameSpan {
        /// Deterministic span id: `(datagram_ordinal << 8) | frame_idx`.
        /// The record's source field carries the shard.
        span: u64,
        /// The interval index the frame claimed.
        interval: u64,
        /// The frame's verify outcome label (same set as `VerifyEnd`).
        outcome: &'static str,
        /// Reader-side routing + copy time before the shard queue.
        ingress_ns: u32,
        /// Enqueue → worker-pop wait.
        queue_ns: u32,
        /// Datagram decode/reassembly time (shared by packed frames).
        decode_ns: u32,
        /// This frame's share of its window's batch-prefetch time
        /// (0 on the unwindowed drain path).
        prefetch_ns: u32,
        /// Verifier time for announce-path frames (0 for reveals).
        verify_ns: u32,
        /// Reservoir-decision bookkeeping time (0 when the frame never
        /// reached a buffer).
        buffer_ns: u32,
        /// Verifier time for reveal-authenticate frames (0 for
        /// announces).
        reveal_ns: u32,
    },
    /// A control-plane estimator sample: the per-interval forged-share
    /// measurement (ppm) and the EWMA estimate `p̂` it produced, stamped
    /// with the epoch in force when the sample landed.
    ControlEstimate {
        /// The control-plane epoch after this step (unchanged unless
        /// the sample also fired a directive).
        epoch: u64,
        /// The raw per-step forged-share sample in parts-per-million.
        sample_ppm: u64,
        /// The post-sample EWMA estimate `p̂` in parts-per-million.
        p_hat_ppm: u64,
    },
}

impl TraceEvent {
    /// The event's stable name (the `ev` field in JSONL).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::FrameRx { .. } => "frame_rx",
            Self::VerifyStart { .. } => "verify_start",
            Self::VerifyEnd { .. } => "verify_end",
            Self::BufferDecision { .. } => "buffer_decision",
            Self::KeyReveal { .. } => "key_reveal",
            Self::ShardStall { .. } => "shard_stall",
            Self::FaultInjected { .. } => "fault_injected",
            Self::SessionEvicted { .. } => "session_evicted",
            Self::ShedDecision { .. } => "shed_decision",
            Self::PostureChange { .. } => "posture_change",
            Self::FrameSpan { .. } => "frame_span",
            Self::ControlEstimate { .. } => "control_estimate",
        }
    }
}

/// One emitted record: who, when (protocol time), in what order, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Source id (shard index; see the pool for reserved ids).
    pub source: u32,
    /// This source's monotone sequence number, starting at 0.
    pub seq: u64,
    /// Protocol-time stamp (simulator ticks or a source ordinal).
    pub at: u64,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// One JSONL line (no trailing newline): fixed field order
    /// `src, seq, at, ev`, then the event's own fields.
    #[must_use]
    pub fn to_json(&self) -> String {
        let base = JsonObject::new()
            .u64("src", u64::from(self.source))
            .u64("seq", self.seq)
            .u64("at", self.at)
            .str("ev", self.event.name());
        match &self.event {
            TraceEvent::FrameRx { bytes } => base.u64("bytes", *bytes),
            TraceEvent::VerifyStart { interval } => base.u64("interval", *interval),
            TraceEvent::VerifyEnd {
                interval,
                outcome,
                elapsed_ns,
            } => base
                .u64("interval", *interval)
                .str("outcome", outcome)
                .u64("elapsed_ns", *elapsed_ns),
            TraceEvent::BufferDecision {
                interval,
                kept,
                k,
                m,
            } => base
                .u64("interval", *interval)
                .bool("kept", *kept)
                .u64("k", *k)
                .u64("m", *m),
            TraceEvent::KeyReveal { interval } => base.u64("interval", *interval),
            TraceEvent::ShardStall { shard, depth } => {
                base.u64("shard", u64::from(*shard)).u64("depth", *depth)
            }
            TraceEvent::FaultInjected { kind } => base.str("kind", kind),
            TraceEvent::SessionEvicted {
                sender,
                shard,
                occupancy,
            } => base
                .u64("sender", *sender)
                .u64("shard", u64::from(*shard))
                .u64("occupancy", *occupancy),
            TraceEvent::ShedDecision {
                sender,
                class,
                interval,
            } => base
                .u64("sender", *sender)
                .str("class", class)
                .u64("interval", *interval),
            TraceEvent::PostureChange {
                epoch,
                from_m,
                to_m,
                p_permille,
                give_up,
            } => base
                .u64("epoch", *epoch)
                .u64("from_m", *from_m)
                .u64("to_m", *to_m)
                .u64("p_permille", *p_permille)
                .bool("give_up", *give_up),
            TraceEvent::FrameSpan {
                span,
                interval,
                outcome,
                ingress_ns,
                queue_ns,
                decode_ns,
                prefetch_ns,
                verify_ns,
                buffer_ns,
                reveal_ns,
            } => base
                .u64("span", *span)
                .u64("interval", *interval)
                .str("outcome", outcome)
                .u64("ingress_ns", u64::from(*ingress_ns))
                .u64("queue_ns", u64::from(*queue_ns))
                .u64("decode_ns", u64::from(*decode_ns))
                .u64("prefetch_ns", u64::from(*prefetch_ns))
                .u64("verify_ns", u64::from(*verify_ns))
                .u64("buffer_ns", u64::from(*buffer_ns))
                .u64("reveal_ns", u64::from(*reveal_ns)),
            TraceEvent::ControlEstimate {
                epoch,
                sample_ppm,
                p_hat_ppm,
            } => base
                .u64("epoch", *epoch)
                .u64("sample_ppm", *sample_ppm)
                .u64("p_hat_ppm", *p_hat_ppm),
        }
        .finish()
    }
}

/// Where records go. Sinks are owned per emitter, so recording needs no
/// synchronisation on the hot path.
pub trait TraceSink {
    /// Accepts one record.
    fn record(&mut self, record: TraceRecord);
}

/// Swallows everything — tracing compiled in, turned off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _record: TraceRecord) {}
}

/// A bounded ring buffer keeping the most recent records; older ones
/// are shed and counted. This is the in-memory sink the pool shards
/// use — bounded so a flood cannot turn tracing into an allocator
/// attack on the defender. Once the backing store is warm the ring is
/// allocation-free: a full ring overwrites its oldest slot in place
/// rather than shuffling a deque, which keeps the per-record cost flat
/// on the verify hot path.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    capacity: usize,
    records: Vec<TraceRecord>,
    /// Oldest slot (the next overwrite target) once the ring is full.
    head: usize,
    shed: u64,
}

impl RingSink {
    /// Storage preallocated up front, so a forensic-depth ring pays its
    /// allocator bill at setup instead of mid-campaign. Deeper rings
    /// grow amortized past this point.
    const PREALLOC_CAP: usize = 1 << 16;

    /// A ring holding at most `capacity` records (0 disables retention:
    /// every record is shed and counted).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            records: Vec::with_capacity(capacity.min(Self::PREALLOC_CAP)),
            head: 0,
            shed: 0,
        }
    }

    /// Records shed because the ring was full.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Records currently retained, oldest first. A ring that has not
    /// wrapped has `head == 0`, so the chain's first arm is the whole
    /// store and the second is empty.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records[self.head..]
            .iter()
            .chain(&self.records[..self.head])
    }

    /// Consumes the ring, returning retained records oldest first.
    #[must_use]
    pub fn into_records(mut self) -> Vec<TraceRecord> {
        self.records.rotate_left(self.head);
        self.records
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, record: TraceRecord) {
        if self.capacity == 0 {
            self.shed = self.shed.saturating_add(1);
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.shed = self.shed.saturating_add(1);
        }
    }
}

/// Writes one JSON object per line to an [`io::Write`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Creates `path` and writes the header line. The header timestamp
    /// is read from `time` — the run's own [`TimeSource`] — so a
    /// deterministic run (frozen or manual clocks) produces a
    /// byte-identical whole file and ci gates can `cmp` traces without
    /// skipping the header; only a wall-clocked run stamps real time.
    ///
    /// # Errors
    ///
    /// File creation / write errors.
    pub fn create(path: &str, time: &TimeSource) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let mut writer = io::BufWriter::new(file);
        writeln!(writer, "{}", header_line(time.now_ns()))?;
        Ok(Self { writer })
    }
}

/// The JSONL header line (no trailing newline) for a trace whose clock
/// read `clock_ns` at creation.
#[must_use]
pub fn header_line(clock_ns: u64) -> String {
    JsonObject::new()
        .str("trace", "dap-obs")
        .u64("version", 2)
        .u64("clock_ns", clock_ns)
        .finish()
}

impl<W: Write> JsonlSink<W> {
    /// A sink over an arbitrary writer, with no header line.
    pub fn from_writer(writer: W) -> Self {
        Self { writer }
    }

    /// Flushes and returns the writer.
    ///
    /// # Errors
    ///
    /// Flush errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, record: TraceRecord) {
        // A full disk mid-trace must not take the run down with it.
        let _ = writeln!(self.writer, "{}", record.to_json());
    }
}

/// Stamps records with one source id and that source's monotone
/// sequence numbers.
#[derive(Debug, Clone, Default)]
pub struct TraceEmitter<S: TraceSink> {
    source: u32,
    next_seq: u64,
    sink: S,
}

impl<S: TraceSink> TraceEmitter<S> {
    /// An emitter for `source` writing into `sink`.
    pub fn new(source: u32, sink: S) -> Self {
        Self {
            source,
            next_seq: 0,
            sink,
        }
    }

    /// Emits one event at protocol time `at`.
    pub fn emit(&mut self, at: u64, event: TraceEvent) {
        let record = TraceRecord {
            source: self.source,
            seq: self.next_seq,
            at,
            event,
        };
        self.next_seq += 1;
        self.sink.record(record);
    }

    /// This emitter's source id.
    #[must_use]
    pub fn source(&self) -> u32 {
        self.source
    }

    /// Records emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// The sink, for in-place inspection.
    #[must_use]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the emitter, returning its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

/// Sorts records into the canonical total order: by `(source, seq)`.
/// Each source's sequence is deterministic, so the sorted stream of a
/// seeded run is byte-identical across executions regardless of how
/// threads interleaved.
pub fn sort_records(records: &mut [TraceRecord]) {
    // (source, seq) is unique per record, so the unstable sort is
    // order-equivalent and skips the stable sort's scratch allocation —
    // measurable on six-figure incident traces.
    records.sort_unstable_by_key(|r| (r.source, r.seq));
}

/// Renders records as JSONL (one line each, trailing newline after the
/// last when non-empty).
#[must_use]
pub fn render_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(source: u32, seq: u64) -> TraceRecord {
        TraceRecord {
            source,
            seq,
            at: seq * 10,
            event: TraceEvent::FrameRx { bytes: 42 },
        }
    }

    #[test]
    fn emitter_assigns_monotone_seqs() {
        let mut emitter = TraceEmitter::new(3, RingSink::new(8));
        emitter.emit(100, TraceEvent::VerifyStart { interval: 7 });
        emitter.emit(
            100,
            TraceEvent::VerifyEnd {
                interval: 7,
                outcome: "stored",
                elapsed_ns: 0,
            },
        );
        assert_eq!(emitter.emitted(), 2);
        let records = emitter.into_sink().into_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert!(records.iter().all(|r| r.source == 3));
    }

    #[test]
    fn ring_sheds_oldest_and_counts() {
        let mut ring = RingSink::new(2);
        for seq in 0..5 {
            ring.record(sample(0, seq));
        }
        assert_eq!(ring.shed(), 3);
        let kept: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(ring.clone().into_records().len(), 2);
        assert_eq!(ring.into_records()[0].seq, 3);
        let mut zero = RingSink::new(0);
        zero.record(sample(0, 0));
        assert_eq!(zero.shed(), 1);
        assert_eq!(zero.records().count(), 0);
    }

    #[test]
    fn sort_is_total_by_source_then_seq() {
        let mut records = vec![sample(1, 0), sample(0, 1), sample(0, 0), sample(1, 1)];
        sort_records(&mut records);
        let order: Vec<(u32, u64)> = records.iter().map(|r| (r.source, r.seq)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn every_event_serialises_with_its_name() {
        let events = [
            TraceEvent::FrameRx { bytes: 9 },
            TraceEvent::VerifyStart { interval: 2 },
            TraceEvent::VerifyEnd {
                interval: 2,
                outcome: "auth",
                elapsed_ns: 5,
            },
            TraceEvent::BufferDecision {
                interval: 2,
                kept: true,
                k: 7,
                m: 4,
            },
            TraceEvent::KeyReveal { interval: 2 },
            TraceEvent::ShardStall {
                shard: 1,
                depth: 64,
            },
            TraceEvent::FaultInjected { kind: "wire.loss" },
            TraceEvent::SessionEvicted {
                sender: 17,
                shard: 1,
                occupancy: 63,
            },
            TraceEvent::ShedDecision {
                sender: 17,
                class: "low",
                interval: 2,
            },
            TraceEvent::PostureChange {
                epoch: 1,
                from_m: 4,
                to_m: 13,
                p_permille: 800,
                give_up: false,
            },
            TraceEvent::FrameSpan {
                span: (12 << 8) | 1,
                interval: 2,
                outcome: "auth",
                ingress_ns: 1,
                queue_ns: 2,
                decode_ns: 3,
                prefetch_ns: 4,
                verify_ns: 0,
                buffer_ns: 5,
                reveal_ns: 6,
            },
            TraceEvent::ControlEstimate {
                epoch: 1,
                sample_ppm: 900_000,
                p_hat_ppm: 512_345,
            },
        ];
        for event in events {
            let name = event.name();
            let record = TraceRecord {
                source: 0,
                seq: 0,
                at: 0,
                event,
            };
            let line = record.to_json();
            assert!(line.starts_with("{\"src\":0,\"seq\":0,\"at\":0,"), "{line}");
            assert!(line.contains(&format!("\"ev\":\"{name}\"")), "{line}");
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut sink = JsonlSink::from_writer(Vec::new());
        sink.record(sample(0, 0));
        sink.record(sample(0, 1));
        let bytes = sink.finish().expect("flush");
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert_eq!(render_jsonl(&[sample(0, 0), sample(0, 1)]), text);
    }

    #[test]
    fn header_line_is_deterministic_under_frozen_clocks() {
        let frozen = TimeSource::frozen();
        assert_eq!(header_line(frozen.now_ns()), header_line(frozen.now_ns()));
        assert_eq!(
            header_line(0),
            "{\"trace\":\"dap-obs\",\"version\":2,\"clock_ns\":0}"
        );
    }

    #[test]
    fn render_jsonl_round_trips_byte_stably() {
        let records = vec![sample(0, 0), sample(2, 5)];
        assert_eq!(render_jsonl(&records), render_jsonl(&records.clone()));
        assert_eq!(render_jsonl(&[]), "");
    }
}
