//! A last/min/max sample tracker for instantaneous readings (queue
//! occupancy, in-flight frames) where a histogram's bucket resolution
//! would be overkill but "what was it, how bad did it get" still
//! matters.

/// Tracks the last, smallest and largest of a series of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gauge {
    last: u64,
    min: u64,
    max: u64,
    sets: u64,
}

impl Gauge {
    /// An unset gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    pub fn set(&mut self, v: u64) {
        if self.sets == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.last = v;
        self.sets = self.sets.saturating_add(1);
    }

    /// The most recent sample, `None` when unset.
    #[must_use]
    pub fn last(&self) -> Option<u64> {
        (self.sets > 0).then_some(self.last)
    }

    /// The smallest sample seen, `None` when unset.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.sets > 0).then_some(self.min)
    }

    /// The largest sample seen, `None` when unset.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.sets > 0).then_some(self.max)
    }

    /// How many samples have been recorded.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Folds another gauge into this one. Min/max combine exactly; for
    /// `last` there is no global order between two merged streams, so
    /// the larger of the two lasts wins — a deterministic choice that
    /// keeps shard-merge results independent of merge order.
    pub fn merge(&mut self, other: &Gauge) {
        if other.sets == 0 {
            return;
        }
        if self.sets == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.last = self.last.max(other.last);
        self.sets = self.sets.saturating_add(other.sets);
    }

    /// A byte-stable one-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        if self.sets == 0 {
            return "unset".to_string();
        }
        format!(
            "last={} min={} max={} sets={}",
            self.last, self.min, self.max, self.sets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_gauge_reports_nothing() {
        let g = Gauge::new();
        assert_eq!(g.last(), None);
        assert_eq!(g.min(), None);
        assert_eq!(g.max(), None);
        assert_eq!(g.render(), "unset");
    }

    #[test]
    fn tracks_last_min_max() {
        let mut g = Gauge::new();
        g.set(5);
        g.set(2);
        g.set(9);
        g.set(4);
        assert_eq!(g.last(), Some(4));
        assert_eq!(g.min(), Some(2));
        assert_eq!(g.max(), Some(9));
        assert_eq!(g.sets(), 4);
        assert_eq!(g.render(), "last=4 min=2 max=9 sets=4");
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Gauge::new();
        a.set(3);
        a.set(7);
        let mut b = Gauge::new();
        b.set(1);
        b.set(5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.min(), Some(1));
        assert_eq!(ab.max(), Some(7));
        assert_eq!(ab.last(), Some(7));
        let mut with_empty = a.clone();
        with_empty.merge(&Gauge::new());
        assert_eq!(with_empty, a);
    }
}
