//! The observability plane must not cost determinism: a traced,
//! histogram-instrumented loopback campaign under a frozen time source
//! is as reproducible as an untraced one. Two same-seed runs must agree
//! byte-for-byte on the rendered registry snapshot *and* on the rendered
//! trace JSONL — that equality is what lets a flood incident be captured
//! once and replayed/diffed forever (see EXPERIMENTS.md).

use std::sync::Arc;

use crowdsense_dap::net::loopback::{run_loopback_with, LoopbackReport, LoopbackSpec};
use crowdsense_dap::net::telemetry::SharedRegistry;
use crowdsense_dap::obs::{render_jsonl, TraceEvent};
use crowdsense_dap::simnet::keys;

fn traced_spec() -> LoopbackSpec {
    LoopbackSpec {
        seed: 20160706,
        intervals: 120,
        buffers: 4,
        shards: 4,
        queue_depth: 256,
        flood: 0.8,
        copies: 2,
        loss: 0.05,
        corrupt: 0.01,
        flood_end: None,
        adaptive: false,
        trace_depth: 65_536,
        span_every: 1,
    }
}

fn run_traced() -> LoopbackReport {
    run_loopback_with(&traced_spec(), None)
}

#[test]
fn traced_loopback_snapshot_and_trace_are_byte_stable() {
    let a = run_traced();
    let b = run_traced();
    assert_eq!(
        a.registry.render(),
        b.registry.render(),
        "same seed must render the same telemetry snapshot"
    );
    assert_eq!(
        render_jsonl(&a.trace),
        render_jsonl(&b.trace),
        "same seed must render the same trace JSONL"
    );
    assert!(!a.trace.is_empty(), "traced run produced no records");
}

#[test]
fn trace_agrees_with_the_counters_it_narrates() {
    let report = run_traced();
    let m = &report.metrics;
    let count = |pred: &dyn Fn(&TraceEvent) -> bool| -> u64 {
        report.trace.iter().filter(|r| pred(&r.event)).count() as u64
    };
    // One VerifyEnd per decoded frame, one BufferDecision per safe
    // announce, one KeyReveal per reveal — the trace is the counters,
    // event by event.
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::VerifyEnd { .. })),
        m.get(keys::NET_INGRESS_FRAMES) - m.get(keys::NET_DECODE_ERRORS),
        "every decoded frame gets exactly one verify span"
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::KeyReveal { .. })),
        m.get(keys::NET_REVEAL_TOTAL),
        "every reveal frame is narrated"
    );
    let kept = count(&|e| matches!(e, TraceEvent::BufferDecision { kept: true, .. }));
    assert_eq!(
        kept,
        m.get(keys::NET_ANNOUNCE_STORED),
        "kept buffer decisions match the stored counter"
    );
    // Wire faults are traced by the transport under its reserved source
    // id (shards + 1) and match the wire counters exactly.
    let spec = traced_spec();
    let wire_source = u32::try_from(spec.shards).expect("small") + 1;
    let wire_faults = report
        .trace
        .iter()
        .filter(|r| r.source == wire_source)
        .count() as u64;
    assert_eq!(
        wire_faults,
        m.get(keys::NET_WIRE_LOST) + m.get(keys::NET_WIRE_CORRUPTED),
        "every injected wire fault leaves a trace record"
    );
}

#[test]
fn span_recorder_narrates_every_decoded_frame_and_feeds_stage_histograms() {
    let report = run_traced();
    let m = &report.metrics;
    // span_every = 1: one FrameSpan per decoded frame, emitted after
    // the frame's causal events.
    let spans = report
        .trace
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::FrameSpan { .. }))
        .count() as u64;
    assert_eq!(
        spans,
        m.get(keys::NET_INGRESS_FRAMES) - m.get(keys::NET_DECODE_ERRORS),
        "every decoded frame gets exactly one flight-recorder span"
    );
    // The stage histograms carry one sample per span on the per-frame
    // stages (counts fingerprint the run; frozen clocks zero durations).
    let verify_stage = report
        .registry
        .get_histogram(keys::NET_STAGE_VERIFY_NS)
        .expect("stage histograms present under span_every > 0");
    assert_eq!(verify_stage.count(), spans);
    assert_eq!(verify_stage.max(), Some(0), "frozen clocks zero the stages");
    assert!(report
        .registry
        .get_histogram(keys::NET_STAGE_QUEUE_WAIT_NS)
        .is_some());
}

#[test]
fn adaptive_run_exposes_control_gauges_on_the_telemetry_snapshot() {
    // An adaptive ramp with a provisioned control slot (shards + 1)
    // publishes the plane's live posture as Prometheus gauges.
    let spec = LoopbackSpec {
        intervals: 160,
        flood: 0.1,
        flood_end: Some(0.9),
        adaptive: true,
        trace_depth: 0,
        span_every: 0,
        ..traced_spec()
    };
    let shared = Arc::new(SharedRegistry::new(spec.shards + 1));
    let report = run_loopback_with(&spec, Some(Arc::clone(&shared)));
    assert!(
        report.metrics.get(keys::CONTROL_SAMPLES) > 0,
        "the ramp must feed the estimator"
    );
    let text = shared.snapshot().render_prometheus();
    for family in [
        "# TYPE control_gauge_p_hat_ppm gauge",
        "# TYPE control_gauge_epoch gauge",
        "# TYPE control_gauge_m gauge",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
    // The ramp ends near p = 0.9: the live estimate gauge must have
    // left zero, and the commanded m must be a live value >= 1.
    let shot = shared.snapshot();
    let p_hat = shot
        .get_gauge(keys::CONTROL_GAUGE_P_HAT_PPM)
        .and_then(|g| g.last())
        .expect("p̂ gauge set");
    assert!(p_hat > 0, "estimate gauge never moved");
    let live_m = shot
        .get_gauge(keys::CONTROL_GAUGE_M)
        .and_then(|g| g.last())
        .expect("m gauge set");
    assert!(live_m >= 1);
}

#[test]
fn frozen_time_keeps_latency_histograms_countful_but_durationless() {
    let report = run_traced();
    let verify = report
        .registry
        .get_histogram(keys::NET_VERIFY_LATENCY_NS)
        .expect("verify latency histogram present");
    assert!(verify.count() > 0, "verify spans were recorded");
    // Frozen TimeSource: every span is zero ns, so counts fingerprint
    // the run while durations stay deterministic.
    assert_eq!(verify.max(), Some(0));
    // Queue occupancy is wall-only instrumentation and must be absent
    // from a deterministic run.
    assert!(report
        .registry
        .get_histogram(keys::NET_QUEUE_OCCUPANCY)
        .is_none());
}
