//! End-to-end DAP campaigns over the simulated network: empirical
//! authentication rates vs the paper's analytic model, memory bounds,
//! and determinism.

use crowdsense_dap::dap::analysis::authentic_presence;
use crowdsense_dap::dap::sim::{run_campaign, CampaignSpec};

fn spec(p: f64, m: usize, seed: u64) -> CampaignSpec {
    CampaignSpec {
        attack_fraction: p,
        announce_copies: 1,
        buffers: m,
        intervals: 1200,
        loss: 0.0,
        seed,
    }
}

/// With n total copies per interval (1 authentic + forged), the exact
/// survival probability of the authentic copy in an m-buffer reservoir
/// is min(1, m/n); the paper's 1 − p^m is the large-n approximation.
fn exact_rate(p: f64, m: usize) -> f64 {
    let forged = (p / (1.0 - p)).round();
    let total = forged + 1.0;
    (m as f64 / total).min(1.0)
}

#[test]
fn empirical_rate_matches_reservoir_model_grid() {
    for &(p, m) in &[(0.5, 1usize), (0.8, 2), (0.8, 4), (0.9, 3), (0.9, 8)] {
        let out = run_campaign(&spec(p, m, 42));
        let expect = exact_rate(p, m);
        assert!(
            (out.authentication_rate - expect).abs() < 0.05,
            "p={p} m={m}: empirical {} vs exact {}",
            out.authentication_rate,
            expect
        );
    }
}

#[test]
fn paper_approximation_is_a_lower_bound_at_small_n() {
    // 1 − p^m underestimates the small-n reservoir rate, so DAP does at
    // least as well as the paper promises.
    for &(p, m) in &[(0.8, 2usize), (0.8, 4), (0.9, 3)] {
        let out = run_campaign(&spec(p, m, 7));
        assert!(
            out.authentication_rate + 0.03 >= authentic_presence(p, m as u32),
            "p={p} m={m}: empirical {} below 1-p^m {}",
            out.authentication_rate,
            authentic_presence(p, m as u32)
        );
    }
}

#[test]
fn memory_is_hard_bounded_under_any_flood() {
    for &p in &[0.5, 0.9, 0.99] {
        let out = run_campaign(&CampaignSpec {
            attack_fraction: p,
            announce_copies: 1,
            buffers: 6,
            intervals: 300,
            loss: 0.0,
            seed: 3,
        });
        assert!(
            out.peak_memory_bits <= 6 * 56,
            "p={p}: peak {} bits",
            out.peak_memory_bits
        );
    }
}

#[test]
fn lossy_channel_and_flood_combined() {
    let out = run_campaign(&CampaignSpec {
        attack_fraction: 0.8,
        announce_copies: 1,
        buffers: 4,
        intervals: 1000,
        loss: 0.2,
        seed: 11,
    });
    // Announce survives with 0.8, reveal with 0.8, reservoir with ~0.8:
    // overall ≈ 0.512 of reveals *processed* authenticate at ≈ 0.8/...
    // just require sane bounds and nonzero progress.
    assert!(out.authenticated > 300, "{out:?}");
    assert!(out.authentication_rate > 0.5, "{out:?}");
    assert!(out.authentication_rate < 0.95, "{out:?}");
}

#[test]
fn campaigns_are_reproducible() {
    let a = run_campaign(&spec(0.8, 4, 1234));
    let b = run_campaign(&spec(0.8, 4, 1234));
    assert_eq!(a, b);
    let c = run_campaign(&spec(0.8, 4, 1235));
    assert_ne!(a, c, "different seeds should differ somewhere");
}

#[test]
fn more_buffers_monotonically_help() {
    let mut last = 0.0;
    for m in [1usize, 2, 3, 4, 5] {
        let out = run_campaign(&spec(0.8, m, 5));
        assert!(
            out.authentication_rate >= last - 0.02,
            "m={m}: {} dropped below {last}",
            out.authentication_rate
        );
        last = out.authentication_rate;
    }
    // m = 5 covers all 5 copies: perfect authentication.
    assert!(last > 0.99, "m=5 rate {last}");
}
