//! The QoS-balanced adaptive defense loop, end to end: a DAP receiver
//! under a changing flood, with the evolutionary-game controller
//! re-provisioning buffers each epoch.

use crowdsense_dap::crypto::Mac80;
use crowdsense_dap::dap::wire::Announce;
use crowdsense_dap::dap::{
    AdaptiveConfig, AdaptiveController, DapParams, DapReceiver, DapSender, DapStats,
};
use crowdsense_dap::game::cost::naive_defense_cost;
use crowdsense_dap::game::DosGameParams;
use crowdsense_dap::simnet::{SimRng, SimTime};

struct Epoch {
    true_p: f64,
    rate: f64,
    policy: crowdsense_dap::dap::DefensePolicy,
}

/// Drives `epochs` of `intervals_per_epoch` each; attack level per epoch
/// from `attack`; controller re-provisions between epochs.
fn drive(attack: &[f64], intervals_per_epoch: u64, smoothing: f64, seed: u64) -> Vec<Epoch> {
    let params = DapParams::default();
    let mut sender = DapSender::new(
        b"adaptive-it",
        attack.len() * intervals_per_epoch as usize + 2,
        params,
    );
    let mut receiver = DapReceiver::new(sender.bootstrap(), b"adaptive-node");
    let mut controller = AdaptiveController::new(AdaptiveConfig {
        smoothing,
        ..AdaptiveConfig::paper_defaults()
    });
    let mut rng = SimRng::new(seed);
    let mut out = Vec::new();
    let mut interval = 0u64;

    for &p in attack {
        let before = *receiver.stats();
        let mut ok = 0u64;
        for _ in 0..intervals_per_epoch {
            interval += 1;
            let t_a = SimTime((interval - 1) * 100 + 10);
            let t_r = SimTime(interval * 100 + 10);
            let forged = if p > 0.0 {
                (p / (1.0 - p)).round() as u32
            } else {
                0
            };
            for _ in 0..forged {
                let mut mac = [0u8; 10];
                rng.fill_bytes(&mut mac);
                receiver.on_announce(
                    &Announce {
                        index: interval,
                        mac: Mac80::from_slice(&mac).unwrap(),
                    },
                    t_a,
                    &mut rng,
                );
            }
            let genuine = sender.announce(interval, b"r").unwrap();
            receiver.on_announce(&genuine, t_a, &mut rng);
            if receiver
                .on_reveal(&sender.reveal(interval).unwrap(), t_r)
                .is_authenticated()
            {
                ok += 1;
            }
        }
        let after = *receiver.stats();
        let epoch_stats = DapStats {
            announces_offered: after.announces_offered - before.announces_offered,
            authenticated: after.authenticated - before.authenticated,
            ..Default::default()
        };
        controller.observe_stats(&epoch_stats);
        let policy = controller.recommend();
        receiver.set_buffers(policy.buffers as usize);
        out.push(Epoch {
            true_p: p,
            rate: ok as f64 / intervals_per_epoch as f64,
            policy,
        });
    }
    out
}

#[test]
fn buffers_track_attack_level() {
    let epochs = drive(&[0.0, 0.5, 0.8, 0.9], 200, 0.9, 1);
    let ms: Vec<u32> = epochs.iter().map(|e| e.policy.buffers).collect();
    // Non-decreasing while the attack ramps.
    for w in ms.windows(2) {
        assert!(w[0] <= w[1], "buffers decreased during ramp: {ms:?}");
    }
    assert_eq!(ms[0], 1, "no attack → minimal buffers");
    assert!(ms[3] >= 10, "severe attack → many buffers: {ms:?}");
}

#[test]
fn estimates_converge_to_true_attack_level() {
    let epochs = drive(&[0.8, 0.8, 0.8, 0.8, 0.8], 300, 0.9, 2);
    let last = epochs.last().unwrap();
    assert!(
        (last.policy.estimated_p - 0.8).abs() < 0.08,
        "estimate {} vs true 0.8",
        last.policy.estimated_p
    );
}

#[test]
fn give_up_regime_engages_under_jamming() {
    let epochs = drive(&[0.9, 0.99, 0.99, 0.99], 200, 0.9, 3);
    let last = epochs.last().unwrap();
    assert!(last.policy.is_give_up(), "{:?}", last.policy);
    assert!((last.policy.expected_cost - 200.0).abs() < 5.0);
}

#[test]
fn adaptive_cost_beats_naive_across_regimes() {
    let epochs = drive(&[0.3, 0.5, 0.8, 0.95, 0.99], 200, 0.9, 4);
    for e in &epochs {
        if e.policy.estimated_p <= 0.0 {
            continue;
        }
        let naive = naive_defense_cost(
            DosGameParams {
                ra: 200.0,
                k1: 20.0,
                k2: 4.0,
                p: e.policy.estimated_p,
                m: 1,
            },
            50,
        );
        assert!(
            e.policy.expected_cost <= naive + 1e-6,
            "p={}: adaptive {} > naive {naive}",
            e.true_p,
            e.policy.expected_cost
        );
    }
}

#[test]
fn recovery_after_attack_subsides() {
    let epochs = drive(&[0.9, 0.9, 0.0, 0.0, 0.0], 200, 0.9, 5);
    let peak = epochs[1].policy.buffers;
    let settled = epochs.last().unwrap().policy.buffers;
    assert!(
        settled < peak,
        "buffers should shrink after the attack: peak {peak}, settled {settled}"
    );
    assert!(epochs.last().unwrap().rate > 0.99);
}
