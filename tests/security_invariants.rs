//! Cross-protocol security invariant: **no forged message ever
//! authenticates**, in any protocol of the family, under floods of every
//! shape we can construct without the sender's keys.

use crowdsense_dap::crypto::{Key, Mac80};
use crowdsense_dap::dap::{DapParams, DapReceiver, DapSender};
use crowdsense_dap::simnet::{SimDuration, SimRng, SimTime};
use crowdsense_dap::tesla::multilevel::{
    Linkage, MultiLevelParams, MultiLevelReceiver, MultiLevelSender,
};
use crowdsense_dap::tesla::mutesla::{DataPacket, MuTeslaMessage, MuTeslaReceiver, MuTeslaSender};
use crowdsense_dap::tesla::tesla::{ReceiverEvent, TeslaPacket, TeslaReceiver, TeslaSender};
use crowdsense_dap::tesla::teslapp::{TeslaPpMessage, TeslaPpReceiver, TeslaPpSender};
use crowdsense_dap::tesla::TeslaParams;

const FORGERY_MARK: &[u8] = b"FORGED";

fn forged_mac(rng: &mut SimRng) -> Mac80 {
    let mut b = [0u8; 10];
    rng.fill_bytes(&mut b);
    Mac80::from_slice(&b).unwrap()
}

#[test]
fn tesla_never_authenticates_forgeries() {
    let params = TeslaParams::new(SimDuration(100), 2, 0);
    let sender = TeslaSender::new(b"t", 40, params);
    let mut receiver = TeslaReceiver::new(sender.bootstrap());
    let mut rng = SimRng::new(1);

    for i in 1..=38u64 {
        let t = SimTime((i - 1) * 100 + 10);
        // Attacker: random-MAC packets, message-swapped packets, and
        // packets with forged disclosed keys.
        for _ in 0..3 {
            let forged = TeslaPacket {
                index: i,
                message: FORGERY_MARK.to_vec(),
                mac: forged_mac(&mut rng),
                disclosed: None,
            };
            receiver.on_packet(&forged, t);
        }
        let mut swapped = sender.packet(i, b"real").unwrap();
        swapped.message = FORGERY_MARK.to_vec();
        receiver.on_packet(&swapped, t);
        let mut bad_key = sender.packet(i, b"real2").unwrap();
        if let Some(d) = &mut bad_key.disclosed {
            d.key = Key::random(&mut rng);
        }
        let events = receiver.on_packet(&bad_key, t);
        // Forged keys must never advance the anchor.
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, ReceiverEvent::KeyAccepted { .. })
                    && bad_key.disclosed.is_some()
                    && i > 2),
            "interval {i}"
        );
        // Genuine traffic.
        receiver.on_packet(
            &sender.packet(i, format!("real {i}").as_bytes()).unwrap(),
            t,
        );
    }
    for (_, msg) in receiver.authenticated() {
        assert!(
            !msg.starts_with(FORGERY_MARK),
            "forged message authenticated"
        );
        assert!(msg.starts_with(b"real"), "unexpected message {msg:?}");
    }
    assert!(
        !receiver.authenticated().is_empty(),
        "genuine traffic must pass"
    );
}

#[test]
fn mutesla_never_authenticates_forgeries() {
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let sender = MuTeslaSender::new(b"m", 30, params);
    let mut receiver = MuTeslaReceiver::new(sender.bootstrap());
    let mut rng = SimRng::new(2);

    for i in 1..=29u64 {
        let t = SimTime((i - 1) * 100 + 10);
        for _ in 0..3 {
            receiver.on_message(
                &MuTeslaMessage::Data(DataPacket {
                    index: i,
                    message: FORGERY_MARK.to_vec(),
                    mac: forged_mac(&mut rng),
                }),
                t,
            );
        }
        receiver.on_message(
            &MuTeslaMessage::KeyDisclosure {
                index: i,
                key: Key::random(&mut rng),
            },
            t,
        );
        receiver.on_message(&sender.data(i, format!("real {i}").as_bytes()).unwrap(), t);
        if let Some(d) = sender.disclosure(i) {
            receiver.on_message(&d, t);
        }
    }
    for (_, msg) in receiver.authenticated() {
        assert!(msg.starts_with(b"real"));
    }
    assert!(!receiver.authenticated().is_empty());
}

#[test]
fn teslapp_never_authenticates_forgeries() {
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let mut sender = TeslaPpSender::new(b"pp", 30, params);
    let mut receiver = TeslaPpReceiver::new(sender.bootstrap(), b"rx");
    let mut rng = SimRng::new(3);

    let mut authenticated = Vec::new();
    for i in 1..=29u64 {
        let t_a = SimTime((i - 1) * 100 + 10);
        let t_r = SimTime(i * 100 + 10);
        for _ in 0..5 {
            receiver.on_message(
                &TeslaPpMessage::MacAnnounce {
                    index: i,
                    mac: forged_mac(&mut rng),
                },
                t_a,
            );
        }
        receiver.on_message(
            &sender.announce(i, format!("real {i}").as_bytes()).unwrap(),
            t_a,
        );
        // Attacker reveal with forged message + random key.
        let out = receiver.on_message(
            &TeslaPpMessage::Reveal {
                index: i,
                message: FORGERY_MARK.to_vec(),
                key: Key::random(&mut rng),
            },
            t_r,
        );
        assert!(
            !matches!(
                out,
                crowdsense_dap::tesla::teslapp::TeslaPpOutcome::Authenticated { .. }
            ),
            "forged reveal authenticated at {i}"
        );
        if let Some(rev) = sender.reveal(i) {
            if let crowdsense_dap::tesla::teslapp::TeslaPpOutcome::Authenticated {
                message, ..
            } = receiver.on_message(&rev, t_r)
            {
                authenticated.push(message);
            }
        }
    }
    assert!(!authenticated.is_empty());
    for msg in &authenticated {
        assert!(msg.starts_with(b"real"));
    }
}

#[test]
fn multilevel_never_authenticates_forgeries() {
    let params = MultiLevelParams::new(SimDuration(25), 4, 20, 3, Linkage::Eftp);
    let sender = MultiLevelSender::new(b"ml", params);
    let mut receiver = MultiLevelReceiver::new(sender.bootstrap());
    let mut rng = SimRng::new(4);

    for i in 1..=18u64 {
        let t = SimTime((params.global_low_index(i, 1) - 1) * 25 + 1);
        // Forged CDMs.
        if let Some(genuine_cdm) = sender.cdm(i) {
            for _ in 0..5 {
                let mut forged = genuine_cdm.clone();
                forged.low_commitment = Key::random(&mut rng);
                receiver.on_cdm(&forged, t, &mut rng);
            }
            receiver.on_cdm(&genuine_cdm, t, &mut rng);
        }
        // Forged + genuine data in (i, 2).
        let t2 = SimTime((params.global_low_index(i, 2) - 1) * 25 + 1);
        let mut forged_pkt = sender.data_packet(i, 2, b"real").unwrap();
        forged_pkt.message = FORGERY_MARK.to_vec();
        receiver.on_low_packet(&forged_pkt, t2);
        receiver.on_low_packet(
            &sender
                .data_packet(i, 2, format!("real {i}").as_bytes())
                .unwrap(),
            t2,
        );
        // Disclosure in (i, 3).
        let t3 = SimTime((params.global_low_index(i, 3) - 1) * 25 + 1);
        if let Some(d) = sender.low_disclosure(i, 3) {
            receiver.on_low_disclosure(&d, t3);
        }
    }
    assert!(!receiver.authenticated().is_empty());
    for (_, _, msg) in receiver.authenticated() {
        assert!(msg.starts_with(b"real"), "forged low packet authenticated");
    }
    // Forged commitments must never be installed: every installed chain
    // authenticates genuine traffic, which we just verified.
    assert!(receiver.stats().cdm_forged_rejected > 0);
}

#[test]
fn dap_never_authenticates_forgeries() {
    let params = DapParams::default().with_buffers(4);
    let mut sender = DapSender::new(b"dap", 64, params);
    let mut receiver = DapReceiver::new(sender.bootstrap(), b"rx");
    let mut rng = SimRng::new(5);

    for i in 1..=60u64 {
        let t_a = SimTime((i - 1) * 100 + 10);
        let t_r = SimTime(i * 100 + 10);
        for _ in 0..4 {
            receiver.on_announce(
                &crowdsense_dap::dap::wire::Announce {
                    index: i,
                    mac: forged_mac(&mut rng),
                },
                t_a,
                &mut rng,
            );
        }
        let genuine = sender.announce(i, format!("real {i}").as_bytes()).unwrap();
        receiver.on_announce(&genuine, t_a, &mut rng);

        // The genuine reveal authenticates; a tampered replay of it (same
        // genuine key, attacker message) must then fail. A tampered
        // reveal *racing* the genuine one would consume the interval's
        // candidates — an availability loss equivalent to jamming the
        // reveal, never an authentication break (asserted at the end).
        let rev = sender.reveal(i).unwrap();
        // With m = 4 buffers against 4 forged copies the genuine entry
        // survives with probability 4/5 — most intervals authenticate.
        let _ = receiver.on_reveal(&rev, t_r);
        let mut tampered = rev.clone();
        tampered.message = FORGERY_MARK.to_vec();
        let out_tampered = receiver.on_reveal(&tampered, t_r);
        assert!(!out_tampered.is_authenticated(), "interval {i}");
    }
    for (_, msg) in receiver.authenticated() {
        assert!(msg.starts_with(b"real"), "forged DAP message authenticated");
    }
    assert!(
        receiver.stats().authenticated > 35,
        "{:?}",
        receiver.stats()
    );
    assert_eq!(
        receiver.stats().authenticated,
        receiver.authenticated().len() as u64
    );
}
