//! Forensic-layer gates: the JSONL trace dialect round-trips
//! byte-identically, a seeded flood soak audits clean, a corrupted
//! capture is flagged with its line number, and the daptrace report is
//! byte-stable across same-seed runs — the library-level versions of
//! what the ci.sh `daptrace` gate checks through the binary.

use std::collections::BTreeSet;

use crowdsense_dap::net::forensics;
use crowdsense_dap::net::loopback::{run_loopback, LoopbackSpec};
use crowdsense_dap::obs::{header_line, parse_trace, render_jsonl, TraceEvent};

/// The seeded flood capture every test here forensically examines:
/// heavy flood (`p = 0.9`), deep enough rings that nothing is shed,
/// spans on every frame.
fn flood_trace() -> Vec<crowdsense_dap::obs::TraceRecord> {
    let spec = LoopbackSpec {
        intervals: 60,
        trace_depth: 65_536,
        span_every: 1,
        ..LoopbackSpec::default()
    };
    let report = run_loopback(&spec);
    assert!(!report.trace.is_empty(), "traced run must produce records");
    report.trace
}

#[test]
fn jsonl_round_trip_is_byte_identical() {
    let records = flood_trace();
    // The on-disk shape: the frozen-clock header line plus one record
    // per line — exactly what `dapd --trace-out` writes.
    let text = format!("{}\n{}", header_line(0), render_jsonl(&records));
    let parsed = parse_trace(&text).expect("own render must parse");
    let header = parsed.header.expect("header line present");
    let rendered = format!(
        "{}\n{}",
        header_line(header.clock_ns),
        render_jsonl(&parsed.records)
    );
    assert_eq!(text, rendered, "parse → re-render must be byte-identical");
}

#[test]
fn seeded_flood_soak_audits_clean() {
    let records = flood_trace();
    let text = render_jsonl(&records);
    let parsed = parse_trace(&text).expect("flood trace parses");
    let violations = forensics::audit(&parsed, &BTreeSet::new());
    assert!(
        violations.is_empty(),
        "pipeline trace must satisfy its own invariants: {:?}",
        violations.first()
    );
    // The run floods at p = 0.9 from the first interval, so the
    // forged-share trajectory crosses the onset threshold immediately.
    let trajectory = forensics::forged_share_trajectory(&parsed);
    let onset = forensics::attack_onset(&trajectory);
    assert!(onset.is_some(), "constant 0.9 flood must register an onset");
}

#[test]
fn corrupted_line_is_flagged_with_its_line_number() {
    let records = flood_trace();
    let text = render_jsonl(&records);
    // Corrupt the first verify_end by renaming its outcome to a label
    // no writer produces — classic single-line tamper.
    let target = text
        .lines()
        .position(|l| l.contains("\"ev\":\"verify_end\""))
        .expect("flood trace has verify_end records");
    let tampered: String = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == target {
                l.replace("\"outcome\":\"", "\"outcome\":\"hacked_")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let err = parse_trace(&tampered).expect_err("tampered line must not parse");
    assert_eq!(err.line, target + 1, "violation names the tampered line");
}

#[test]
fn audit_flags_a_forged_causal_stream() {
    // Parsing alone cannot catch a *well-formed* lie; the audit must.
    // Splice a session eviction for a pinned sender into an otherwise
    // clean capture.
    let mut records = flood_trace();
    let last_seq = records
        .iter()
        .filter(|r| r.source == 0)
        .map(|r| r.seq)
        .max()
        .expect("shard 0 emitted");
    records.push(crowdsense_dap::obs::TraceRecord {
        source: 0,
        seq: last_seq + 1,
        at: 0,
        event: TraceEvent::SessionEvicted {
            sender: 7,
            shard: 0,
            occupancy: 0,
        },
    });
    crowdsense_dap::obs::sort_records(&mut records);
    let parsed = parse_trace(&render_jsonl(&records)).expect("splice still parses");
    let pinned: BTreeSet<u64> = [7].into();
    let violations = forensics::audit(&parsed, &pinned);
    assert!(
        violations.iter().any(|v| v.rule == "pin-respected"),
        "evicting a pinned sender must be flagged: {violations:?}"
    );
}

#[test]
fn report_is_byte_stable_across_same_seed_runs() {
    let first = flood_trace();
    let second = flood_trace();
    let report_a = forensics::render_report(&parse_trace(&render_jsonl(&first)).expect("parses"));
    let report_b = forensics::render_report(&parse_trace(&render_jsonl(&second)).expect("parses"));
    assert_eq!(report_a, report_b, "same seed ⇒ byte-identical report");
    assert!(report_a.contains("stage"), "report carries the stage table");
    assert!(
        report_a.contains("frame_span"),
        "report census counts flight-recorder spans"
    );
}
