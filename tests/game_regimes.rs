//! The evolutionary-game results of §VI-B, end to end: regime map,
//! convergence behaviour, optimiser and cost comparisons.

use crowdsense_dap::game::cost::{defense_cost, naive_defense_cost};
use crowdsense_dap::game::dynamics::evolve;
use crowdsense_dap::game::ess::{predict_ess, EssKind};
use crowdsense_dap::game::optimize::optimal_buffer_count;
use crowdsense_dap::game::{DosGameParams, PopulationState};

fn game(p: f64, m: u32) -> crowdsense_dap::game::DosGame {
    DosGameParams::paper_defaults(p, m).into_game()
}

/// Fig. 6's regime boundaries at p = 0.8 (paper: 1-11 / 12-17 / 18-54 /
/// 55-100; our m = 17/18 boundary differs by one — a knife-edge case
/// documented in EXPERIMENTS.md).
#[test]
fn regime_boundaries_at_paper_settings() {
    assert_eq!(
        predict_ess(&game(0.8, 1)).kind,
        EssKind::FullDefenseFullAttack
    );
    assert_eq!(
        predict_ess(&game(0.8, 11)).kind,
        EssKind::FullDefenseFullAttack
    );
    assert_eq!(
        predict_ess(&game(0.8, 12)).kind,
        EssKind::FullDefensePartialAttack
    );
    assert_eq!(
        predict_ess(&game(0.8, 16)).kind,
        EssKind::FullDefensePartialAttack
    );
    assert_eq!(predict_ess(&game(0.8, 19)).kind, EssKind::Interior);
    assert_eq!(predict_ess(&game(0.8, 54)).kind, EssKind::Interior);
    assert_eq!(
        predict_ess(&game(0.8, 55)).kind,
        EssKind::PartialDefenseFullAttack
    );
    assert_eq!(
        predict_ess(&game(0.8, 100)).kind,
        EssKind::PartialDefenseFullAttack
    );
}

/// The ESS is independent of the interior starting point (the paper's
/// replicator-dynamics stability claim).
#[test]
fn ess_independent_of_interior_start() {
    for m in [5u32, 14, 30, 70] {
        let g = game(0.8, m);
        let reference = predict_ess(&g);
        for &(x0, y0) in &[(0.2, 0.9), (0.9, 0.2), (0.6, 0.6), (0.15, 0.15)] {
            let out = crowdsense_dap::game::ess::predict_ess_from(&g, PopulationState::new(x0, y0));
            assert_eq!(out.kind, reference.kind, "m={m} from ({x0},{y0})");
            assert!(
                out.point.distance(&reference.point) < 3e-2,
                "m={m} from ({x0},{y0}): {} vs {}",
                out.point,
                reference.point
            );
        }
    }
}

/// Corners of the square never move (pure populations cannot change by
/// replication), and trajectories never leave the unit square.
#[test]
fn dynamics_respect_the_simplex() {
    let g = game(0.8, 30);
    let t = evolve(&g, PopulationState::new(0.01, 0.99), 50_000);
    for s in t.states() {
        assert!((0.0..=1.0).contains(&s.x()) && (0.0..=1.0).contains(&s.y()));
    }
}

/// Fig. 7 + Fig. 8 shape: the optimal m grows with p in the moderate
/// band; the game-guided cost beats naive everywhere.
#[test]
fn optimizer_and_cost_sweep() {
    let mut last_m = 0u32;
    for &p in &[0.5, 0.6, 0.7, 0.8, 0.9] {
        let opt = optimal_buffer_count(DosGameParams::paper_defaults(p, 1), 50);
        assert!(opt.m >= last_m, "m*({p}) = {} decreased", opt.m);
        last_m = opt.m;

        let naive = naive_defense_cost(DosGameParams::paper_defaults(p, 1), 50);
        assert!(
            opt.cost <= naive + 1e-9,
            "p={p}: {} > naive {naive}",
            opt.cost
        );
    }
}

/// §V-F: E is exactly the negated mean defender pay-off at the ESS, and
/// at the heavy-attack (X′,1) ESS it equals R_a for any m.
#[test]
fn cost_identities_hold_at_predicted_ess() {
    for (p, m) in [(0.8, 30u32), (0.99, 10), (0.99, 50)] {
        let g = game(p, m);
        let out = predict_ess(&g);
        let e = defense_cost(&g, out.point);
        let closed = crowdsense_dap::game::cost::defense_cost_closed_form(&g, out.point);
        assert!((e - closed).abs() < 1e-9, "p={p} m={m}");
        if out.kind == EssKind::PartialDefenseFullAttack {
            assert!((e - 200.0).abs() < 0.5, "p={p} m={m}: E={e}");
        }
    }
}

/// The four Fig.-6 panels converge, and the fast regimes converge sooner
/// than the slow ones (the paper's "4 steps vs ~100 vs ~200").
#[test]
fn convergence_speed_ordering() {
    let steps = |m: u32| predict_ess(&game(0.8, m)).steps.expect("must converge");
    let fast_11 = steps(5);
    let slow_1y = steps(14);
    let spiral = steps(30);
    let fast_x1 = steps(70);
    assert!(fast_11 < slow_1y, "{fast_11} !< {slow_1y}");
    assert!(fast_11 < spiral, "{fast_11} !< {spiral}");
    assert!(fast_x1 < spiral, "{fast_x1} !< {spiral}");
}
