//! Golden regression tests: fixed seeds must yield bit-identical results
//! forever. A failure here means a refactor changed observable behaviour
//! (RNG consumption order, event ordering, chain derivation, integrator
//! arithmetic) — which invalidates every number in EXPERIMENTS.md and
//! must be a conscious decision, not an accident.

use crowdsense_dap::crypto::{Domain, KeyChain};
use crowdsense_dap::dap::sim::{run_campaign, CampaignSpec};
use crowdsense_dap::game::ess::predict_ess;
use crowdsense_dap::game::DosGameParams;

#[test]
fn golden_key_chain_commitment() {
    let chain = KeyChain::generate(b"golden-seed", 64, Domain::F);
    assert_eq!(chain.commitment().to_string(), "ce19bb2d59f86cc544aa");
}

// The campaign goldens below pin the current RNG byte stream: the
// in-tree SplitMix64-seeded xoshiro256++ that replaced the external
// `rand` generator when the workspace went hermetic. That swap was a
// conscious stream change and these values were regenerated for it.

#[test]
fn golden_flooded_campaign() {
    let out = run_campaign(&CampaignSpec {
        attack_fraction: 0.8,
        announce_copies: 1,
        buffers: 4,
        intervals: 500,
        loss: 0.1,
        seed: 20160706,
    });
    assert_eq!(out.authenticated, 364);
    assert_eq!(out.no_candidate, 0);
    assert_eq!(out.reveals, 456);
    // Lost reveals leave pools pending across intervals; the peak stays
    // within the documented (d + 2)·m·56 bound.
    assert_eq!(out.peak_memory_bits, 672);
    assert!((out.authentication_rate - 364.0 / 456.0).abs() < 1e-12);
    assert_eq!(out.bits_sent, 396_000);
    assert_eq!(out.bits_delivered, 753_568);
}

#[test]
fn golden_lossy_campaign() {
    let out = run_campaign(&CampaignSpec {
        attack_fraction: 0.0,
        announce_copies: 2,
        buffers: 2,
        intervals: 300,
        loss: 0.25,
        seed: 99,
    });
    assert_eq!(out.authenticated, 212);
    assert_eq!(out.no_candidate, 10);
    assert_eq!(out.reveals, 222);
    assert_eq!(out.peak_memory_bits, 336);
    assert_eq!(out.bits_sent, 136_800);
    assert_eq!(out.bits_delivered, 103_248);
}

/// Two runs of the same campaign spec must agree on *every* observable:
/// receiver outcomes and the radio-energy tallies. This is the whole
/// premise of a seeded simulator — any divergence means hidden state
/// (a shared global RNG, map iteration order, wall-clock leakage).
#[test]
fn same_seed_campaigns_are_identical() {
    let spec = CampaignSpec {
        attack_fraction: 0.6,
        announce_copies: 2,
        buffers: 3,
        intervals: 200,
        loss: 0.15,
        seed: 0xD0_5EED,
    };
    let a = run_campaign(&spec);
    let b = run_campaign(&spec);
    assert_eq!(a, b);
    // The tallies convert to identical energy figures as well.
    let model = crowdsense_dap::simnet::EnergyModel::cc2420();
    let mj = |o: &crowdsense_dap::dap::sim::CampaignOutcome| {
        o.bits_sent as f64 * model.tx_nj_per_bit * 1e-6
            + o.bits_delivered as f64 * model.rx_nj_per_bit * 1e-6
    };
    assert_eq!(mj(&a).to_bits(), mj(&b).to_bits());
    // And a different seed actually changes the run (the spec isn't
    // being ignored).
    let c = run_campaign(&CampaignSpec {
        seed: 0xD1_5EED,
        ..spec
    });
    assert_ne!(
        (a.authenticated, a.bits_delivered),
        (c.authenticated, c.bits_delivered)
    );
}

#[test]
fn golden_interior_ess() {
    let game = DosGameParams::paper_defaults(0.8, 30).into_game();
    let out = predict_ess(&game);
    assert!(
        (out.point.x() - 0.955_272_649_362).abs() < 1e-9,
        "{}",
        out.point
    );
    assert!(
        (out.point.y() - 0.573_874_011_233).abs() < 1e-9,
        "{}",
        out.point
    );
    assert_eq!(out.steps, Some(764));
}
