//! Golden regression tests: fixed seeds must yield bit-identical results
//! forever. A failure here means a refactor changed observable behaviour
//! (RNG consumption order, event ordering, chain derivation, integrator
//! arithmetic) — which invalidates every number in EXPERIMENTS.md and
//! must be a conscious decision, not an accident.

use crowdsense_dap::crypto::{Domain, KeyChain};
use crowdsense_dap::dap::sim::{run_campaign, CampaignSpec};
use crowdsense_dap::game::ess::predict_ess;
use crowdsense_dap::game::DosGameParams;

#[test]
fn golden_key_chain_commitment() {
    let chain = KeyChain::generate(b"golden-seed", 64, Domain::F);
    assert_eq!(chain.commitment().to_string(), "ce19bb2d59f86cc544aa");
}

#[test]
fn golden_flooded_campaign() {
    let out = run_campaign(&CampaignSpec {
        attack_fraction: 0.8,
        announce_copies: 1,
        buffers: 4,
        intervals: 500,
        loss: 0.1,
        seed: 20160706,
    });
    assert_eq!(out.authenticated, 346);
    assert_eq!(out.no_candidate, 0);
    assert_eq!(out.reveals, 448);
    // Lost reveals leave pools pending across intervals; the peak stays
    // within the documented (d + 2)·m·56 bound.
    assert_eq!(out.peak_memory_bits, 672);
    assert!((out.authentication_rate - 346.0 / 448.0).abs() < 1e-12);
}

#[test]
fn golden_lossy_campaign() {
    let out = run_campaign(&CampaignSpec {
        attack_fraction: 0.0,
        announce_copies: 2,
        buffers: 2,
        intervals: 300,
        loss: 0.25,
        seed: 99,
    });
    assert_eq!(out.authenticated, 206);
    assert_eq!(out.no_candidate, 17);
    assert_eq!(out.reveals, 223);
    assert_eq!(out.peak_memory_bits, 336);
}

#[test]
fn golden_interior_ess() {
    let game = DosGameParams::paper_defaults(0.8, 30).into_game();
    let out = predict_ess(&game);
    assert!(
        (out.point.x() - 0.955_272_649_362).abs() < 1e-9,
        "{}",
        out.point
    );
    assert!(
        (out.point.y() - 0.573_874_011_233).abs() < 1e-9,
        "{}",
        out.point
    );
    assert_eq!(out.steps, Some(764));
}
