//! The fleet-soak gate: a crowd of tagged senders on one deterministic
//! loopback wire, each spoofed by the flooder at bandwidth share `p`,
//! verified through session-table shards under a fixed memory budget.
//!
//! Three pillars (all ci.sh-gated):
//!
//! 1. **Scale** — ≥ 4k concurrent senders pumped over the loopback wire
//!    authenticate through bounded per-shard session tables, and the
//!    per-sender auth rate tracks the paper's `1 − p^m` independently of
//!    fleet size.
//! 2. **Determinism** — two same-seed campaigns render byte-identical
//!    registry snapshots (counters, gauges, histograms — everything).
//! 3. **Boundedness** — a budget far smaller than the fleet still holds:
//!    occupancy and accounted memory never exceed it, evicted senders
//!    readmit, and no forged announce ever authenticates.

use crowdsense_dap::net::fleet::{run_fleet, FleetSpec};
use crowdsense_dap::net::session::SESSION_OVERHEAD_BITS;
use crowdsense_dap::simnet::keys;

/// Provisioned cost of one fleet session (m = 4, d = 1): the budget
/// arithmetic the table actually uses.
fn session_cost_bits() -> u64 {
    use crowdsense_dap::dap::{DapReceiver, SenderId};
    let bootstrap = crowdsense_dap::net::fleet::fleet_bootstrap(
        2016,
        1,
        6,
        crowdsense_dap::net::fleet::fleet_params(4),
        SenderId(1),
    )
    .expect("id 1 is provisioned");
    DapReceiver::new(bootstrap, b"probe").memory_capacity_bits() + SESSION_OVERHEAD_BITS
}

/// The headline soak: 4096 senders pumped over the loopback wire, flood
/// p = 0.8 spoofing every one of them, sessions budgeted (roomy enough
/// that nothing evicts — the tight-budget variant below exercises
/// eviction). Runs the identical spec twice and `assert_eq!`s the
/// rendered registries byte for byte.
#[test]
fn four_thousand_sender_fleet_is_deterministic_and_tracks_the_paper() {
    let cost = session_cost_bits();
    let spec = FleetSpec {
        seed: 20_160_627,
        senders: 4096,
        intervals: 4,
        buffers: 4,
        shards: 4,
        flood: 0.8,
        // 4096 senders over 4 by-sender shards ≈ 1024 sessions each;
        // 1200 × cost is a *fixed* budget that happens to hold the fleet
        // with headroom for shard imbalance in the sender-id hash.
        memory_budget_bits: 1200 * cost,
        ..FleetSpec::default()
    };
    let first = run_fleet(&spec);
    let second = run_fleet(&spec);

    // Pillar 2: byte-identical snapshots, same frame count.
    assert_eq!(
        first.registry.render(),
        second.registry.render(),
        "same-seed fleet runs must render identically"
    );
    assert_eq!(first.frames, second.frames);
    assert!(first.frames > 0);

    // Pillar 1: every sender admitted exactly once, nothing evicted,
    // and the aggregate auth rate tracks 1 − p^m = 1 − 0.8⁴ ≈ 0.59.
    let m = &first.metrics;
    assert_eq!(m.get(keys::NET_SESSION_ADMITTED), 4096);
    assert_eq!(m.get(keys::NET_SESSION_EVICTED), 0);
    assert_eq!(m.get(keys::NET_SESSION_UNKNOWN), 0);
    assert_eq!(m.get(keys::NET_REVEAL_TOTAL), 4096 * 4);
    assert!(
        (first.auth_rate - first.expected_rate).abs() < 0.05,
        "fleet auth rate {:.4} drifted from expected {:.4}",
        first.auth_rate,
        first.expected_rate
    );
    // No spoofed forgery may ever pass the weak (chain-key) check, for
    // any sender: the wire tag routes, the chain authenticates.
    assert_eq!(m.get(keys::NET_REVEAL_WEAK_REJECTED), 0);
    assert_eq!(
        m.get(keys::NET_REVEAL_AUTH) + m.get(keys::NET_REVEAL_STRONG_REJECTED),
        m.get(keys::NET_REVEAL_TOTAL),
        "reveal outcomes must balance on a clean wire"
    );
    // Per-sender envelope: with 4 reveals each, an unlucky sender can
    // land at 0‰ (P ≈ 0.4⁴ ≈ 2%), but the top of the envelope must sit
    // at or above the aggregate — the rate is genuinely per-sender, not
    // carried by a lucky few.
    let lo = first
        .min_sender_auth_permille
        .expect("every sender revealed");
    let hi = first.max_sender_auth_permille.expect("envelope");
    assert!(lo <= hi && hi <= 1000);
    assert!(
        hi >= 590,
        "even the luckiest sender ({hi}‰) fell below the expected aggregate"
    );

    // Session-table memory stayed within the fixed budget on every shard.
    let memory = first
        .registry
        .get_gauge(keys::NET_SESSION_MEMORY_BITS)
        .expect("memory gauge");
    assert!(memory.max().unwrap_or(0) <= spec.memory_budget_bits);
    let occupancy = first
        .registry
        .get_gauge(keys::NET_SESSION_OCCUPANCY)
        .expect("occupancy gauge");
    assert!(occupancy.max().unwrap_or(0) <= 1200);
}

/// Pillar 3: a budget of 64 sessions per shard against a 1024-sender
/// crowd (≈ 256 per shard) — heavy LRU churn, yet occupancy and memory
/// never exceed the budget, evicted senders come back, and the forged
/// flood still never authenticates.
#[test]
fn tight_budget_crowd_stays_bounded_and_readmits() {
    let cost = session_cost_bits();
    let spec = FleetSpec {
        seed: 20_160_628,
        senders: 1024,
        intervals: 3,
        buffers: 4,
        shards: 4,
        flood: 0.8,
        memory_budget_bits: 64 * cost,
        ..FleetSpec::default()
    };
    let report = run_fleet(&spec);
    let m = &report.metrics;
    assert_eq!(m.get(keys::NET_SESSION_ADMITTED), 1024);
    assert!(
        m.get(keys::NET_SESSION_EVICTED) > 0,
        "a 64-session budget must evict under a 256-session load"
    );
    assert!(
        m.get(keys::NET_SESSION_READMITTED) > 0,
        "evicted senders' later frames must readmit them"
    );
    let occupancy = report
        .registry
        .get_gauge(keys::NET_SESSION_OCCUPANCY)
        .expect("occupancy gauge");
    assert!(occupancy.max().unwrap_or(u64::MAX) <= 64);
    let memory = report
        .registry
        .get_gauge(keys::NET_SESSION_MEMORY_BITS)
        .expect("memory gauge");
    assert!(memory.max().unwrap_or(u64::MAX) <= spec.memory_budget_bits);
    // Eviction costs availability (lost pending intervals), never
    // integrity: the weak check still rejects every forgery.
    assert_eq!(m.get(keys::NET_REVEAL_WEAK_REJECTED), 0);
    assert_eq!(m.get(keys::NET_SESSION_UNKNOWN), 0);
}
