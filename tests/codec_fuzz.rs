//! Fuzz-style property tests for the DAP wire codec: `decode` is total
//! over arbitrary, mutated and truncated byte strings — it returns a
//! frame or a structured [`DecodeError`], and never panics. Receivers
//! parse attacker-controlled bytes, so totality is a security property.
//!
//! Runs on `dap-testkit` (≥ 256 cases per property, shrinking, replay
//! with `DAP_TESTKIT_SEED=<seed> cargo test --test codec_fuzz`).

use crowdsense_dap::crypto::{Key, Mac80};
use crowdsense_dap::dap::codec::{
    decode, decode_tagged, encode, encode_tagged, peek_sender, FrameAssembler, TaggedFrame,
};
use crowdsense_dap::dap::wire::{Announce, DapMessage, Reveal};
use crowdsense_dap::dap::{DapBootstrap, DapParams, DapSender, SenderId};
use crowdsense_dap::net::session::{SessionConfig, SessionTable};
use crowdsense_dap::simnet::{SimDuration, SimRng, SimTime};
use dap_testkit::{check_with, Config, Gen};

fn fuzz_config() -> Config {
    Config {
        cases: 256,
        ..Config::default()
    }
}

/// A structurally valid frame drawn from the generator.
fn arbitrary_frame(g: &mut Gen) -> DapMessage {
    let index = g.u64_in(0..u64::from(u32::MAX) + 1);
    if g.any_bool() {
        let mac: [u8; 10] = g.byte_array();
        DapMessage::Announce(Announce {
            index,
            mac: Mac80::from_slice(&mac).unwrap(),
        })
    } else {
        let key: [u8; 10] = g.byte_array();
        DapMessage::Reveal(Reveal {
            index,
            key: Key::from_slice(&key).unwrap(),
            message: g.bytes(0..96),
        })
    }
}

/// Every encodable frame round-trips bit-exactly.
#[test]
fn encode_decode_roundtrips() {
    check_with(fuzz_config(), "codec_roundtrip", |g| {
        let frame = arbitrary_frame(g);
        let encoded = encode(&frame).expect("in-range frame encodes");
        assert_eq!(decode(&encoded).expect("own encoding decodes"), frame);
    });
}

/// Arbitrary bytes — pure noise — never panic the decoder.
#[test]
fn decode_is_total_on_noise() {
    check_with(fuzz_config(), "codec_total_on_noise", |g| {
        let noise = g.bytes(0..160);
        // Ok or Err are both fine; reaching this line at all is the
        // property (a panic would unwind out of the closure and fail).
        let _ = decode(&noise);
    });
}

/// Truncating a valid frame at any point yields a structured error or a
/// (shorter) valid frame — never a panic, and never the original frame.
#[test]
fn decode_is_total_on_truncations() {
    check_with(fuzz_config(), "codec_total_on_truncation", |g| {
        let frame = arbitrary_frame(g);
        let encoded = encode(&frame).unwrap();
        let cut = g.usize_in(0..encoded.len());
        if let Ok(other) = decode(&encoded[..cut]) {
            assert_ne!(other, frame, "truncation cannot round-trip");
        }
    });
}

/// Flipping any single bit of a valid frame never panics, and whatever
/// still decodes is not passed off as the original frame.
#[test]
fn decode_is_total_on_bit_flips() {
    check_with(fuzz_config(), "codec_total_on_bitflip", |g| {
        let frame = arbitrary_frame(g);
        let mut encoded = encode(&frame).unwrap();
        let byte = g.usize_in(0..encoded.len());
        let bit = g.u32_in(0..8);
        encoded[byte] ^= 1 << bit;
        if let Ok(mutated) = decode(&encoded) {
            assert_ne!(
                mutated, frame,
                "bit flip at {byte}:{bit} was silently absorbed"
            );
        }
    });
}

/// Stream reassembly: a frame split at *every* byte boundary — not a
/// sampled one — comes back whole from the assembler, with nothing
/// skipped and nothing left pending.
#[test]
fn assembler_recovers_frame_from_every_split_point() {
    check_with(fuzz_config(), "assembler_every_split", |g| {
        let frame = arbitrary_frame(g);
        let encoded = encode(&frame).unwrap();
        for cut in 0..=encoded.len() {
            let mut asm = FrameAssembler::new();
            asm.push(&encoded[..cut]);
            if cut < encoded.len() {
                // A strict prefix must never yield a frame (the codec
                // has no frame that is a prefix of another).
                assert_eq!(asm.next_frame(), None, "prefix of len {cut} decoded");
                asm.push(&encoded[cut..]);
            }
            assert_eq!(asm.next_frame(), Some(frame.clone()), "split at {cut} lost");
            assert_eq!(asm.next_frame(), None);
            assert_eq!(asm.skipped_bytes(), 0, "split at {cut} skipped bytes");
            assert_eq!(asm.pending_bytes(), 0, "split at {cut} left residue");
        }
    });
}

/// Stream reassembly: many concatenated frames, delivered in chunks cut
/// at arbitrary points, come back complete and in order.
#[test]
fn assembler_recovers_chunked_streams() {
    check_with(fuzz_config(), "assembler_chunked_stream", |g| {
        let frames: Vec<DapMessage> = (0..g.usize_in(1..8)).map(|_| arbitrary_frame(g)).collect();
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&encode(frame).unwrap());
        }
        let mut asm = FrameAssembler::new();
        let mut recovered = Vec::new();
        let mut offset = 0;
        while offset < stream.len() {
            let chunk = g.usize_in(1..stream.len() - offset + 1);
            asm.push(&stream[offset..offset + chunk]);
            offset += chunk;
            while let Some(frame) = asm.next_frame() {
                recovered.push(frame);
            }
        }
        assert_eq!(recovered, frames, "stream reassembly lost or reordered");
        assert_eq!(asm.skipped_bytes(), 0);
        assert_eq!(asm.pending_bytes(), 0);
    });
}

/// Stream reassembly: garbage between frames is skipped byte-for-byte
/// and the assembler resynchronises on the next real frame — it neither
/// panics, loops forever, nor mis-frames what follows.
#[test]
fn assembler_resynchronises_after_garbage() {
    check_with(fuzz_config(), "assembler_resync", |g| {
        let before = encode(&arbitrary_frame(g)).unwrap();
        let after_frame = arbitrary_frame(g);
        let after = encode(&after_frame).unwrap();
        // Garbage that cannot alias a frame tag (0x01–0x04 could start a
        // phantom frame — tagged shapes included — that swallows the
        // real one: a different, valid outcome this property does not
        // model).
        let garbage: Vec<u8> = g
            .bytes(1..32)
            .into_iter()
            .map(|b| if (0x01..=0x04).contains(&b) { 0xff } else { b })
            .collect();
        let mut stream = before.clone();
        stream.extend_from_slice(&garbage);
        stream.extend_from_slice(&after);

        let mut asm = FrameAssembler::new();
        asm.push(&stream);
        let mut recovered = Vec::new();
        while let Some(frame) = asm.next_frame() {
            recovered.push(frame);
        }
        assert_eq!(recovered.len(), 2, "resync dropped a frame");
        assert_eq!(recovered[1], after_frame, "resync mis-framed the tail");
        assert_eq!(
            asm.skipped_bytes(),
            garbage.len() as u64,
            "skipped-byte accounting is off"
        );
        assert_eq!(asm.pending_bytes(), 0);
    });
}

/// A wire-range sender id (the tagged shapes carry a `u32` field).
fn arbitrary_sender(g: &mut Gen) -> SenderId {
    SenderId(g.u64_in(0..u64::from(u32::MAX) + 1))
}

/// Every encodable tagged frame round-trips bit-exactly, attribution
/// included, and `peek_sender` reads the id without decoding.
#[test]
fn tagged_encode_decode_roundtrips() {
    check_with(fuzz_config(), "tagged_codec_roundtrip", |g| {
        let sender = arbitrary_sender(g);
        let message = arbitrary_frame(g);
        let encoded = encode_tagged(sender, &message).expect("in-range frame encodes");
        assert_eq!(
            decode_tagged(&encoded).expect("own encoding decodes"),
            TaggedFrame { sender, message },
        );
        assert_eq!(peek_sender(&encoded), Some(sender));
    });
}

/// The tagged decoder is as total as the legacy one: pure noise and
/// truncations of valid tagged frames never panic, and a truncation
/// never round-trips.
#[test]
fn tagged_decode_is_total_on_noise_and_truncations() {
    check_with(fuzz_config(), "tagged_codec_total", |g| {
        let _ = decode_tagged(&g.bytes(0..160));
        let _ = peek_sender(&g.bytes(0..8));

        let sender = arbitrary_sender(g);
        let message = arbitrary_frame(g);
        let encoded = encode_tagged(sender, &message).unwrap();
        let cut = g.usize_in(0..encoded.len());
        if let Ok(other) = decode_tagged(&encoded[..cut]) {
            assert_ne!(other.message, message, "truncation cannot round-trip");
        }
    });
}

/// A chunk-split stream mixing tagged and legacy frames reassembles
/// completely with per-frame attribution intact (legacy shapes report
/// [`SenderId::UNTAGGED`]).
#[test]
fn assembler_preserves_sender_attribution() {
    check_with(fuzz_config(), "assembler_tagged_attribution", |g| {
        let frames: Vec<TaggedFrame> = (0..g.usize_in(1..8))
            .map(|_| {
                let sender = if g.any_bool() {
                    arbitrary_sender(g)
                } else {
                    SenderId::UNTAGGED
                };
                TaggedFrame {
                    sender,
                    message: arbitrary_frame(g),
                }
            })
            .collect();
        let mut stream = Vec::new();
        for frame in &frames {
            // UNTAGGED draws the legacy encoding: the wire carries both
            // shapes side by side during a fleet rollout.
            let bytes = if frame.sender == SenderId::UNTAGGED {
                encode(&frame.message).unwrap()
            } else {
                encode_tagged(frame.sender, &frame.message).unwrap()
            };
            stream.extend_from_slice(&bytes);
        }
        let mut asm = FrameAssembler::new();
        let mut recovered = Vec::new();
        let mut offset = 0;
        while offset < stream.len() {
            let chunk = g.usize_in(1..stream.len() - offset + 1);
            asm.push(&stream[offset..offset + chunk]);
            offset += chunk;
            while let Some(frame) = asm.next_tagged_frame() {
                recovered.push(frame);
            }
        }
        assert_eq!(recovered, frames, "attribution lost or reordered");
        assert_eq!(asm.skipped_bytes(), 0);
        assert_eq!(asm.pending_bytes(), 0);
    });
}

/// The wire tag routes but never authenticates: genuine bytes from
/// sender A, re-tagged (spliced) to claim sender B, must never verify
/// under B's session — while the untampered copy still authenticates
/// under A's. The sessions' chains differ, so A's revealed key can
/// never anchor to B's commitment.
#[test]
fn cross_sender_splice_never_authenticates() {
    check_with(fuzz_config(), "cross_sender_splice_rejected", |g| {
        let params = DapParams::new(SimDuration(100), 1, 0, 4);
        let seed = g.any_u64();
        let directory = move |id: SenderId| -> Option<DapBootstrap> {
            // Two provisioned senders with distinct chains.
            (id.0 == 1 || id.0 == 2)
                .then(|| DapSender::new(&(seed ^ id.0).to_be_bytes(), 8, params).bootstrap())
        };
        let mut alice = DapSender::new(&(seed ^ 1).to_be_bytes(), 8, params);
        let mut table = SessionTable::new(SessionConfig::default(), g.any_u64());
        let mut rng = SimRng::new(g.any_u64());

        // Alice walks her chain to a random interval.
        let interval = g.u64_in(1..5);
        let mut announce = None;
        for i in 1..=interval {
            announce = Some(alice.announce(i, b"genuine reading").expect("chain fits"));
        }
        let announce = announce.expect("at least one interval");
        let reveal = alice.reveal(interval).expect("announced");
        let at = SimTime((interval - 1) * 100 + 10);

        // The attacker copies Alice's genuine bytes and rewrites only
        // the sender field — the splice. Both copies hit the receiver.
        for (claim, frame) in [
            (SenderId(1), DapMessage::Announce(announce)),
            (SenderId(2), DapMessage::Announce(announce)),
        ] {
            let bytes = encode_tagged(claim, &frame).unwrap();
            let tagged = decode_tagged(&bytes).unwrap();
            let session = table.lookup(tagged.sender, directory).expect("provisioned");
            if let DapMessage::Announce(a) = &tagged.message {
                session.receiver.on_announce(a, at, &mut rng);
            }
        }
        let reveal_at = SimTime(at.ticks() + 100);
        let mut outcomes = Vec::new();
        for claim in [SenderId(1), SenderId(2)] {
            let bytes = encode_tagged(claim, &DapMessage::Reveal(reveal.clone())).unwrap();
            let tagged = decode_tagged(&bytes).unwrap();
            let session = table.lookup(tagged.sender, directory).expect("provisioned");
            if let DapMessage::Reveal(r) = &tagged.message {
                outcomes.push(session.receiver.on_reveal(r, reveal_at).is_authenticated());
            }
        }
        assert_eq!(
            outcomes,
            vec![true, false],
            "genuine copy must authenticate as Alice and never as Bob"
        );
    });
}

/// Splicing, duplicating and extending frames never panics the decoder.
#[test]
fn decode_is_total_on_splices() {
    check_with(fuzz_config(), "codec_total_on_splice", |g| {
        let a = encode(&arbitrary_frame(g)).unwrap();
        let b = encode(&arbitrary_frame(g)).unwrap();
        let cut_a = g.usize_in(0..a.len() + 1);
        let cut_b = g.usize_in(0..b.len() + 1);
        let mut spliced = a[..cut_a].to_vec();
        spliced.extend_from_slice(&b[cut_b..]);
        let _ = decode(&spliced);
        // Concatenation of two whole frames must be rejected (trailing
        // bytes), not mis-parsed as one frame.
        let mut both = a.clone();
        both.extend_from_slice(&b);
        assert!(decode(&both).is_err(), "two frames decoded as one");
    });
}
