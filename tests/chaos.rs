//! Chaos suite: every protocol in the workspace against 32 seeded fault
//! plans layering blackouts, bit corruption, duplication, reorder
//! spikes, sender crashes and clock drift on the simulated medium.
//!
//! Three invariants hold for every protocol × plan:
//!
//! 1. **Soundness** — nothing forged or corrupted ever authenticates:
//!    every authenticated message is byte-identical to what the genuine
//!    sender constructed for that interval.
//! 2. **Recovery** — all fault windows close by 65 % of the run, and
//!    once they do the receiver re-anchors and authenticates through to
//!    the end of the chain (up to the protocol's structural tail lag).
//! 3. **Determinism** — the same seed replays to a bit-identical
//!    fingerprint (authenticated transcript + every metric counter).
//!
//! Failures print the offending seed; rerun a single case by fixing
//! `SEEDS` to that value.
//!
//! A second section drives the DESIGN §11 adversary suite: every
//! adversary class against the prioritized fleet posture (pins + finite
//! drain budget), asserting soundness, the pinned-sender survival floor,
//! exact shed attribution and same-seed determinism.

use crowdsense_dap::crypto::{Key, Mac80};
use crowdsense_dap::dap::codec::{decode, encode};
use crowdsense_dap::dap::sim::{DapReceiverNode, DapSenderNode};
use crowdsense_dap::dap::{DapMessage, DapParams, DapSender};
use crowdsense_dap::net::adversary::AdversaryClass;
use crowdsense_dap::net::fleet::{run_fleet, FleetReport, FleetSpec};
use crowdsense_dap::simnet::keys;
use crowdsense_dap::simnet::{
    ChannelModel, DriftSchedule, FaultPlan, FaultWindow, Network, NodeId, SimDuration, SimRng,
    SimTime,
};
use crowdsense_dap::tesla::edrp::{EdrpReceiver, EdrpSender};
use crowdsense_dap::tesla::multilevel::{
    Linkage, MultiLevelParams, MultiLevelReceiver, MultiLevelSender,
};
use crowdsense_dap::tesla::mutesla::{MuTeslaMessage, MuTeslaSender};
use crowdsense_dap::tesla::sim::{TeslaNet, TeslaReceiverNode, TeslaSenderNode};
use crowdsense_dap::tesla::sim_ml::{EdrpReceiverNode, MlNet, MlReceiverNode, MlSenderNode};
use crowdsense_dap::tesla::sim_mu::{
    MuTeslaReceiverNode, MuTeslaSenderNode, TeslaPpReceiverNode, TeslaPpSenderNode,
};
use crowdsense_dap::tesla::tesla::TeslaSender;
use crowdsense_dap::tesla::teslapp::{TeslaPpMessage, TeslaPpSender};
use crowdsense_dap::tesla::TeslaParams;

/// Seeded fault plans per protocol.
const SEEDS: u64 = 32;

/// Sender and receiver node ids (every topology below adds the sender
/// first, the receiver second).
const SENDER: NodeId = NodeId(0);
const RECEIVER: NodeId = NodeId(1);

/// Everything observable about one run: the authenticated transcript
/// (primary index, secondary index, message) and every metric counter.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    auth: Vec<(u64, u64, Vec<u8>)>,
    /// [`Metrics::render`] snapshot: sorted, byte-identical iff the
    /// counter sets are equal — the same fingerprint `dapd` prints and
    /// the ci.sh soak gate diffs.
    metrics: String,
}

fn snapshot_metrics<M: Clone + 'static>(net: &Network<M>) -> String {
    net.metrics().render()
}

fn total_fault_events<M: Clone + 'static>(net: &Network<M>) -> u64 {
    net.metrics()
        .iter()
        .filter(|(k, _)| k.starts_with("fault."))
        .map(|(_, v)| v)
        .sum()
}

/// Builds the fault plan for one seed. All windows close by 65 % of
/// `horizon_ticks` so the recovery invariant has a clean tail to land
/// in; which faults are active and how hard they hit varies per seed.
fn chaos_plan(seed: u64, horizon_ticks: u64) -> FaultPlan {
    let at = |pct: u64| SimTime(horizon_ticks * pct / 100);
    let mut r = SimRng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
    // A blackout somewhere in [15 %, 45 %), always on.
    let from = 15 + r.below(15);
    let len = 5 + r.below(10);
    let mut plan = FaultPlan::new(seed).blackout(FaultWindow::new(at(from), at(from + len)));
    if r.chance(0.8) {
        plan = plan.corrupt(FaultWindow::new(at(35), at(50)), 0.3 + 0.6 * r.unit());
    }
    if r.chance(0.6) {
        plan = plan.duplicate(FaultWindow::new(at(10), at(60)), 0.2 + 0.5 * r.unit());
    }
    if r.chance(0.6) {
        // Spikes at most half an interval long: late frames, not lost ones.
        plan = plan.reorder(
            FaultWindow::new(at(10), at(60)),
            0.2 + 0.5 * r.unit(),
            SimDuration(1 + r.below(40)),
        );
    }
    if r.chance(0.5) {
        plan = plan.crash(SENDER, FaultWindow::new(at(50), at(50 + 2 + r.below(9))));
    }
    if r.chance(0.5) {
        // Receiver clock wanders mid-run and settles back before the tail.
        let shift = r.below(20) as i64 - 10;
        plan = plan.drift(
            RECEIVER,
            DriftSchedule::new().step(at(40), shift).step(at(60), 0),
        );
    }
    plan
}

fn flip_bit(bytes: &mut [u8], rng: &mut SimRng) {
    let i = rng.below(bytes.len() as u64) as usize;
    bytes[i] ^= 1 << rng.below(8);
}

fn flip_key(key: &Key, rng: &mut SimRng) -> Key {
    let mut b: [u8; Key::LEN] = key.as_bytes().try_into().expect("fixed length");
    flip_bit(&mut b, rng);
    Key::from_slice(&b).expect("fixed length")
}

fn flip_mac(mac: &Mac80, rng: &mut SimRng) -> Mac80 {
    let mut b: [u8; Mac80::LEN] = mac.as_bytes().try_into().expect("fixed length");
    flip_bit(&mut b, rng);
    Mac80::from_slice(&b).expect("fixed length")
}

fn flip_message(message: &mut Vec<u8>, rng: &mut SimRng) {
    if message.is_empty() {
        message.push(0xff);
    } else {
        flip_bit(message, rng);
    }
}

// ----------------------------------------------------------------- DAP --

/// One DAP run under `chaos_plan(seed, ..)`; checks soundness and
/// recovery, returns the fingerprint for the determinism check.
fn run_dap(seed: u64) -> Fingerprint {
    let intervals = 40u64;
    let params = DapParams::default().with_buffers(4);
    let horizon_ticks = intervals * params.interval.ticks();
    let sender = DapSender::new(b"chaos-dap", intervals as usize, params);
    let bootstrap = sender.bootstrap();

    let mut net: Network<DapMessage> = Network::new(seed);
    net.add_node(
        DapSenderNode::new(sender, 1, b"chaos".to_vec()),
        ChannelModel::perfect(),
    );
    let rx = net.add_node(
        DapReceiverNode::new(bootstrap, b"chaos-rx"),
        ChannelModel::perfect().with_delay(SimDuration(1)),
    );
    net.set_fault_plan(chaos_plan(seed, horizon_ticks));
    // Corruption goes through the real wire format: encode, flip one
    // bit, decode. Frames that no longer parse are dropped by the link
    // layer, exactly as a checksumming radio would.
    net.set_corruptor(|m: &DapMessage, rng| {
        let mut bytes = encode(m).ok()?;
        flip_bit(&mut bytes, rng);
        decode(&bytes).ok()
    });
    net.run_until(SimTime(horizon_ticks + 3 * params.interval.ticks()));

    let node = net.node_as::<DapReceiverNode>(rx).expect("receiver node");
    let auth: Vec<(u64, u64, Vec<u8>)> = node
        .receiver()
        .authenticated()
        .iter()
        .map(|(i, m)| (*i, 0, m.clone()))
        .collect();
    // Soundness: only the genuine per-interval message authenticates.
    for (i, _, msg) in &auth {
        let mut expected = b"chaos".to_vec();
        expected.extend_from_slice(&i.to_be_bytes());
        assert_eq!(
            msg, &expected,
            "seed {seed}: forged DAP message authenticated"
        );
    }
    // Recovery: the clean tail re-authenticates to the end of the chain.
    let last = auth.iter().map(|(i, _, _)| *i).max().unwrap_or(0);
    assert!(
        last >= intervals - 1,
        "seed {seed}: DAP stuck at interval {last}/{intervals} after faults cleared"
    );
    let metrics = snapshot_metrics(&net);
    assert!(
        total_fault_events(&net) > 0,
        "seed {seed}: plan injected nothing"
    );
    Fingerprint { auth, metrics }
}

// --------------------------------------------------------------- TESLA --

fn run_tesla(seed: u64) -> Fingerprint {
    let horizon = 40u64;
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let horizon_ticks = horizon * 100;
    let sender = TeslaSender::new(b"chaos-tesla", horizon as usize, params);
    let bootstrap = sender.bootstrap();

    let mut net: Network<TeslaNet> = Network::new(seed);
    net.add_node(
        TeslaSenderNode::new(sender, 1, b"chaos".to_vec()),
        ChannelModel::perfect(),
    );
    let rx = net.add_node(
        TeslaReceiverNode::new(bootstrap),
        ChannelModel::perfect().with_delay(SimDuration(1)),
    );
    net.set_fault_plan(chaos_plan(seed, horizon_ticks));
    net.set_corruptor(|m: &TeslaNet, rng| {
        let TeslaNet::Packet(p) = m;
        let mut p = p.clone();
        match rng.below(3) {
            0 => p.mac = flip_mac(&p.mac, rng),
            1 => flip_message(&mut p.message, rng),
            _ => match &mut p.disclosed {
                Some(d) => d.key = flip_key(&d.key, rng),
                None => p.mac = flip_mac(&p.mac, rng),
            },
        }
        Some(TeslaNet::Packet(p))
    });
    net.run_until(SimTime(horizon_ticks + 300));

    let node = net.node_as::<TeslaReceiverNode>(rx).expect("receiver node");
    let auth: Vec<(u64, u64, Vec<u8>)> = node
        .receiver()
        .authenticated()
        .iter()
        .map(|(i, m)| (*i, 0, m.clone()))
        .collect();
    for (i, _, msg) in &auth {
        let mut expected = b"chaos".to_vec();
        expected.extend_from_slice(&i.to_be_bytes());
        expected.push(0);
        assert_eq!(
            msg, &expected,
            "seed {seed}: forged TESLA message authenticated"
        );
    }
    // The last d intervals' keys ride in packets that are never sent.
    let last = auth.iter().map(|(i, _, _)| *i).max().unwrap_or(0);
    assert!(
        last >= horizon - params.disclosure_delay - 1,
        "seed {seed}: TESLA stuck at interval {last}/{horizon} after faults cleared"
    );
    let metrics = snapshot_metrics(&net);
    assert!(
        total_fault_events(&net) > 0,
        "seed {seed}: plan injected nothing"
    );
    Fingerprint { auth, metrics }
}

// -------------------------------------------------------------- μTESLA --

fn run_mutesla(seed: u64) -> Fingerprint {
    let horizon = 40u64;
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let horizon_ticks = horizon * 100;
    let sender = MuTeslaSender::new(b"chaos-mu", (horizon + 4) as usize, params);
    let bootstrap = sender.bootstrap();

    let mut net: Network<MuTeslaMessage> = Network::new(seed);
    net.add_node(
        MuTeslaSenderNode::new(sender, horizon, 1, b"chaos".to_vec()),
        ChannelModel::perfect(),
    );
    let rx = net.add_node(
        MuTeslaReceiverNode::new(bootstrap),
        ChannelModel::perfect().with_delay(SimDuration(1)),
    );
    net.set_fault_plan(chaos_plan(seed, horizon_ticks));
    net.set_corruptor(|m: &MuTeslaMessage, rng| {
        Some(match m {
            MuTeslaMessage::Data(p) => {
                let mut p = p.clone();
                if rng.chance(0.5) {
                    p.mac = flip_mac(&p.mac, rng);
                } else {
                    flip_message(&mut p.message, rng);
                }
                MuTeslaMessage::Data(p)
            }
            MuTeslaMessage::KeyDisclosure { index, key } => MuTeslaMessage::KeyDisclosure {
                index: *index,
                key: flip_key(key, rng),
            },
        })
    });
    net.run_until(SimTime(horizon_ticks + 500));

    let node = net
        .node_as::<MuTeslaReceiverNode>(rx)
        .expect("receiver node");
    let auth: Vec<(u64, u64, Vec<u8>)> = node
        .receiver()
        .authenticated()
        .iter()
        .map(|(i, m)| (*i, 0, m.clone()))
        .collect();
    for (i, _, msg) in &auth {
        let mut expected = b"chaos".to_vec();
        expected.extend_from_slice(&i.to_be_bytes());
        expected.push(0);
        assert_eq!(
            msg, &expected,
            "seed {seed}: forged μTESLA message authenticated"
        );
    }
    let last = auth.iter().map(|(i, _, _)| *i).max().unwrap_or(0);
    assert!(
        last >= horizon - 1,
        "seed {seed}: μTESLA stuck at interval {last}/{horizon} after faults cleared"
    );
    let metrics = snapshot_metrics(&net);
    assert!(
        total_fault_events(&net) > 0,
        "seed {seed}: plan injected nothing"
    );
    Fingerprint { auth, metrics }
}

// ------------------------------------------------------------- TESLA++ --

fn run_teslapp(seed: u64) -> Fingerprint {
    let horizon = 40u64;
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let horizon_ticks = horizon * 100;
    let sender = TeslaPpSender::new(b"chaos-pp", (horizon + 2) as usize, params);
    let bootstrap = sender.bootstrap();

    let mut net: Network<TeslaPpMessage> = Network::new(seed);
    net.add_node(
        TeslaPpSenderNode::new(sender, horizon, b"chaos".to_vec()),
        ChannelModel::perfect(),
    );
    let rx = net.add_node(
        TeslaPpReceiverNode::new(bootstrap, b"chaos-rx"),
        ChannelModel::perfect().with_delay(SimDuration(1)),
    );
    net.set_fault_plan(chaos_plan(seed, horizon_ticks));
    net.set_corruptor(|m: &TeslaPpMessage, rng| {
        Some(match m {
            TeslaPpMessage::MacAnnounce { index, mac } => TeslaPpMessage::MacAnnounce {
                index: *index,
                mac: flip_mac(mac, rng),
            },
            TeslaPpMessage::Reveal {
                index,
                message,
                key,
            } => {
                let mut message = message.clone();
                let mut key = *key;
                if rng.chance(0.5) {
                    key = flip_key(&key, rng);
                } else {
                    flip_message(&mut message, rng);
                }
                TeslaPpMessage::Reveal {
                    index: *index,
                    message,
                    key,
                }
            }
        })
    });
    net.run_until(SimTime(horizon_ticks + 300));

    let node = net
        .node_as::<TeslaPpReceiverNode>(rx)
        .expect("receiver node");
    let auth: Vec<(u64, u64, Vec<u8>)> = node
        .receiver()
        .authenticated()
        .iter()
        .map(|(i, m)| (*i, 0, m.clone()))
        .collect();
    for (i, _, msg) in &auth {
        let mut expected = b"chaos".to_vec();
        expected.extend_from_slice(&i.to_be_bytes());
        assert_eq!(
            msg, &expected,
            "seed {seed}: forged TESLA++ message authenticated"
        );
    }
    let last = auth.iter().map(|(i, _, _)| *i).max().unwrap_or(0);
    assert!(
        last >= horizon - 1,
        "seed {seed}: TESLA++ stuck at interval {last}/{horizon} after faults cleared"
    );
    let metrics = snapshot_metrics(&net);
    assert!(
        total_fault_events(&net) > 0,
        "seed {seed}: plan injected nothing"
    );
    Fingerprint { auth, metrics }
}

// ------------------------------------------- multi-level / EFTP / EDRP --

fn ml_params(linkage: Linkage) -> MultiLevelParams {
    MultiLevelParams::new(SimDuration(25), 4, 16, 3, linkage)
}

fn ml_corruptor(m: &MlNet, rng: &mut SimRng) -> Option<MlNet> {
    Some(match m {
        MlNet::Cdm(c) => {
            let mut c = c.clone();
            match rng.below(3) {
                0 => c.mac = flip_mac(&c.mac, rng),
                1 => c.low_commitment = flip_key(&c.low_commitment, rng),
                _ => match &mut c.disclosed_high {
                    Some((_, key)) => *key = flip_key(key, rng),
                    None => c.mac = flip_mac(&c.mac, rng),
                },
            }
            MlNet::Cdm(c)
        }
        MlNet::EdrpCdm(c) => {
            let mut c = c.clone();
            match rng.below(3) {
                0 => c.mac = flip_mac(&c.mac, rng),
                1 => c.low_commitment = flip_key(&c.low_commitment, rng),
                _ => c.next_hash = flip_key(&c.next_hash, rng),
            }
            MlNet::EdrpCdm(c)
        }
        MlNet::Low(p) => {
            let mut p = p.clone();
            if rng.chance(0.5) {
                p.mac = flip_mac(&p.mac, rng);
            } else {
                flip_message(&mut p.message, rng);
            }
            MlNet::Low(p)
        }
        MlNet::LowKey(d) => {
            let mut d = *d;
            d.key = flip_key(&d.key, rng);
            MlNet::LowKey(d)
        }
    })
}

/// Shared body for multi-level μTESLA (both linkages) and EDRP; the
/// `edrp` flag selects CDM flavour and receiver.
fn run_two_level(seed: u64, linkage: Linkage, edrp: bool, label: &str) -> Fingerprint {
    let params = ml_params(linkage);
    let high_horizon = params.high_chain_len as u64;
    let total_low = high_horizon * u64::from(params.low_per_high);
    let horizon_ticks = total_low * params.low_interval.ticks();

    let mut net: Network<MlNet> = Network::new(seed);
    let rx = if edrp {
        let sender = EdrpSender::new(b"chaos-2l", params);
        let bootstrap = sender.bootstrap();
        net.add_node(
            MlSenderNode::edrp(sender, 2, b"chaos".to_vec()),
            ChannelModel::perfect(),
        );
        net.add_node(
            EdrpReceiverNode::new(EdrpReceiver::new(bootstrap)),
            ChannelModel::perfect().with_delay(SimDuration(1)),
        )
    } else {
        let sender = MultiLevelSender::new(b"chaos-2l", params);
        let bootstrap = sender.bootstrap();
        net.add_node(
            MlSenderNode::multilevel(sender, 2, b"chaos".to_vec()),
            ChannelModel::perfect(),
        );
        net.add_node(
            MlReceiverNode::new(MultiLevelReceiver::new(bootstrap)),
            ChannelModel::perfect().with_delay(SimDuration(1)),
        )
    };
    net.set_fault_plan(chaos_plan(seed, horizon_ticks));
    net.set_corruptor(ml_corruptor);
    net.run_until(SimTime(horizon_ticks + 200));

    let auth: Vec<(u64, u64, Vec<u8>)> = if edrp {
        net.node_as::<EdrpReceiverNode>(rx)
            .expect("receiver node")
            .receiver()
            .inner()
            .authenticated()
            .iter()
            .map(|(h, l, m)| (*h, u64::from(*l), m.clone()))
            .collect()
    } else {
        net.node_as::<MlReceiverNode>(rx)
            .expect("receiver node")
            .receiver()
            .authenticated()
            .iter()
            .map(|(h, l, m)| (*h, u64::from(*l), m.clone()))
            .collect()
    };
    for (high, low, msg) in &auth {
        let mut expected = b"chaos".to_vec();
        expected.extend_from_slice(&high.to_be_bytes());
        expected.push(*low as u8);
        assert_eq!(
            msg, &expected,
            "seed {seed}: forged {label} message authenticated"
        );
    }
    // The very last low interval's key is never disclosed (the sender
    // stops); everything before it must land once the faults clear.
    let last = auth
        .iter()
        .map(|(h, l, _)| params.global_low_index(*h, *l as u32))
        .max()
        .unwrap_or(0);
    assert!(
        last >= total_low - 2,
        "seed {seed}: {label} stuck at low interval {last}/{total_low} after faults cleared"
    );
    let metrics = snapshot_metrics(&net);
    assert!(
        total_fault_events(&net) > 0,
        "seed {seed}: plan injected nothing"
    );
    Fingerprint { auth, metrics }
}

// ----------------------------------------------------- adversary suite --

/// Seeded fleet campaigns against the prioritized defender posture.
const ADVERSARY_SEEDS: u64 = 4;

/// One fleet campaign: `class` at p = 0.9 against 24 senders (ids 1–4
/// operator-pinned) behind a 64-frame per-shard drain budget.
fn run_adversary_campaign(class: AdversaryClass, seed: u64) -> FleetReport {
    run_fleet(&FleetSpec {
        seed: 20_160_000 + seed,
        senders: 24,
        intervals: 8,
        flood: 0.9,
        pins: vec![1, 2, 3, 4],
        adversary: class,
        drain_budget: 64,
        ..FleetSpec::default()
    })
}

/// Every adversary class × seed, twice each. Invariants:
///
/// 1. **Soundness** — no forged, spoofed or replayed frame ever passes
///    the weak (chain-key) check, whatever the attack shape.
/// 2. **Pinned survival** — under every targeted class, pinned senders
///    keep ≥ 99 % of their clean auth rate: they are never spoofed
///    (forging a pin buys nothing observable), never shed (priority
///    drain) and never evicted. Bernoulli is the contrast row — it
///    spoofs pins indiscriminately, so the floor assertion is the
///    survival-matrix row, not this gate.
/// 3. **Attribution** — every shed frame lands in exactly one priority
///    class counter.
/// 4. **Determinism** — same seed, same registry bytes.
#[test]
fn adversary_suite_holds_the_pinned_floor() {
    for class in AdversaryClass::ALL {
        for seed in 0..ADVERSARY_SEEDS {
            let report = run_adversary_campaign(class, seed);
            let replay = run_adversary_campaign(class, seed);
            assert_eq!(
                report.registry.render(),
                replay.registry.render(),
                "{} seed {seed}: same-seed replay diverged",
                class.label()
            );
            let m = &report.metrics;
            assert_eq!(
                m.get(keys::NET_REVEAL_WEAK_REJECTED),
                0,
                "{} seed {seed}: forged key accepted",
                class.label()
            );
            assert_eq!(
                m.get(keys::NET_SHED_TOTAL),
                m.get(keys::NET_SHED_PINNED)
                    + m.get(keys::NET_SHED_HIGH)
                    + m.get(keys::NET_SHED_LOW),
                "{} seed {seed}: shed attribution does not balance",
                class.label()
            );
            if class != AdversaryClass::Bernoulli {
                let floor = report
                    .min_pinned_auth_permille
                    .expect("pinned senders revealed");
                assert!(
                    floor >= 990,
                    "{} seed {seed}: pinned floor {floor} permille below 990",
                    class.label()
                );
                assert_eq!(
                    m.get(keys::NET_SHED_PINNED),
                    0,
                    "{} seed {seed}: a pinned frame was shed",
                    class.label()
                );
            }
        }
    }
}

// --------------------------------------------------------------- tests --

/// Runs `run` across all seeds, twice each, asserting replay equality.
fn chaos_suite(run: fn(u64) -> Fingerprint) {
    for seed in 0..SEEDS {
        let first = run(seed);
        let replay = run(seed);
        assert_eq!(first, replay, "seed {seed}: same-seed replay diverged");
    }
}

#[test]
fn dap_survives_chaos() {
    chaos_suite(run_dap);
}

#[test]
fn tesla_survives_chaos() {
    chaos_suite(run_tesla);
}

#[test]
fn mutesla_survives_chaos() {
    chaos_suite(run_mutesla);
}

#[test]
fn teslapp_survives_chaos() {
    chaos_suite(run_teslapp);
}

#[test]
fn multilevel_survives_chaos() {
    chaos_suite(|seed| run_two_level(seed, Linkage::Original, false, "multi-level"));
}

#[test]
fn eftp_survives_chaos() {
    chaos_suite(|seed| run_two_level(seed, Linkage::Eftp, false, "EFTP"));
}

#[test]
fn edrp_survives_chaos() {
    chaos_suite(|seed| run_two_level(seed, Linkage::Eftp, true, "EDRP"));
}
