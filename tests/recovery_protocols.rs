//! §III claims across the substrate protocols, exercised over the
//! simulated network and hand-fed timelines: EFTP's recovery advantage,
//! EDRP's continuity, and TESLA's (lack of) memory bounds as the
//! motivating contrast.

use crowdsense_dap::crypto::Key;
use crowdsense_dap::simnet::{ChannelModel, FloodIntensity, Network, SimDuration, SimRng, SimTime};
use crowdsense_dap::tesla::edrp::{CdmDisposition, EdrpReceiver, EdrpSender};
use crowdsense_dap::tesla::multilevel::{
    Linkage, MultiLevelParams, MultiLevelReceiver, MultiLevelSender,
};
use crowdsense_dap::tesla::sim::{TeslaFloodAttacker, TeslaReceiverNode, TeslaSenderNode};
use crowdsense_dap::tesla::tesla::TeslaSender;
use crowdsense_dap::tesla::TeslaParams;

fn ml_params(linkage: Linkage) -> MultiLevelParams {
    MultiLevelParams::new(SimDuration(25), 4, 24, 3, linkage)
}

fn at(p: &MultiLevelParams, high: u64, low: u32) -> SimTime {
    SimTime((p.global_low_index(high, low) - 1) * 25 + 2)
}

/// Identical CDM-loss scenario under both linkages: EFTP resolves one
/// high-level interval earlier, for every affected chain.
#[test]
fn eftp_beats_original_linkage_per_chain() {
    for target_chain in [4u64, 6, 9] {
        let mut resolved = std::collections::BTreeMap::new();
        for linkage in [Linkage::Original, Linkage::Eftp] {
            let params = ml_params(linkage);
            let sender = MultiLevelSender::new(b"cmp", params);
            let mut receiver = MultiLevelReceiver::new(sender.bootstrap());
            let mut rng = SimRng::new(1);
            // CDMs up to target_chain - 1 all lost; packet needs the chain.
            receiver.on_low_packet(
                &sender.data_packet(target_chain, 1, b"x").unwrap(),
                at(&params, target_chain, 1),
            );
            for i in target_chain..=(target_chain + 4) {
                receiver.on_cdm(&sender.cdm(i).unwrap(), at(&params, i, 1), &mut rng);
                if let Some(rec) = receiver
                    .recoveries()
                    .iter()
                    .find(|r| r.high == target_chain)
                {
                    resolved.insert(linkage, rec.resolved_at);
                    break;
                }
            }
        }
        let advantage = resolved[&Linkage::Original].since(resolved[&Linkage::Eftp]);
        assert_eq!(
            advantage,
            ml_params(Linkage::Eftp).high_interval(),
            "chain {target_chain}"
        );
    }
}

/// EDRP under sustained flooding: every genuine CDM authenticates
/// instantly, forged ones never reach a buffer.
#[test]
fn edrp_sustains_instant_authentication() {
    let params = ml_params(Linkage::Eftp);
    let sender = EdrpSender::new(b"edrp-it", params);
    let mut receiver = EdrpReceiver::new(sender.bootstrap());
    let mut rng = SimRng::new(2);

    for i in 1..=20u64 {
        let t = at(&params, i, 1);
        for _ in 0..10 {
            let mut forged = sender.cdm(i).unwrap().clone();
            forged.low_commitment = Key::random(&mut rng);
            let (disp, _) = receiver.on_cdm(&forged, t, &mut rng);
            assert_eq!(disp, CdmDisposition::RejectedByHash, "CDM_{i}");
        }
        let (disp, _) = receiver.on_cdm(sender.cdm(i).unwrap(), t, &mut rng);
        assert_eq!(disp, CdmDisposition::Instant, "CDM_{i}");
    }
    assert_eq!(receiver.stats().cdm_instant, 20);
    assert_eq!(receiver.stats().cdm_buffered, 0);
    assert_eq!(receiver.stats().cdm_rejected_by_hash, 200);
}

/// EDRP data path: messages authenticate through commitments installed
/// by instantly-verified CDMs, across the whole horizon.
#[test]
fn edrp_data_flows_through_instant_commitments() {
    let params = ml_params(Linkage::Eftp);
    let sender = EdrpSender::new(b"edrp-data", params);
    let mut receiver = EdrpReceiver::new(sender.bootstrap());
    let mut rng = SimRng::new(3);

    for i in 1..=12u64 {
        receiver.on_cdm(sender.cdm(i).unwrap(), at(&params, i, 1), &mut rng);
        receiver.on_low_packet(&sender.data_packet(i, 2, b"d").unwrap(), at(&params, i, 2));
        if let Some(d) = sender.low_disclosure(i, 3) {
            receiver.on_low_disclosure(&d, at(&params, i, 3));
        }
    }
    assert_eq!(receiver.inner().stats().low_authenticated, 12);
    assert_eq!(receiver.inner().stats().low_rejected, 0);
}

/// The motivating contrast: plain TESLA's buffer grows with the flood
/// (unbounded memory-DoS exposure), which is exactly what DAP's m-buffer
/// pool removes (`tests/end_to_end_dap.rs` asserts the DAP bound).
#[test]
fn tesla_memory_grows_with_flood_intensity() {
    let mut peaks = Vec::new();
    for p in [0.0, 0.5, 0.8] {
        let params = TeslaParams::new(SimDuration(100), 2, 0);
        let sender = TeslaSender::new(b"contrast", 30, params);
        let bootstrap = sender.bootstrap();
        let mut net = Network::new(4);
        net.add_node(
            TeslaSenderNode::new(sender, 2, b"m".to_vec()),
            ChannelModel::perfect(),
        );
        if p > 0.0 {
            net.add_node(
                TeslaFloodAttacker::new(bootstrap, FloodIntensity::of_bandwidth(p), 2, 30, 25),
                ChannelModel::perfect(),
            );
        }
        let rx = net.add_node(TeslaReceiverNode::new(bootstrap), ChannelModel::perfect());
        net.run_until(SimTime(35 * 100));
        peaks.push(
            net.node_as::<TeslaReceiverNode>(rx)
                .unwrap()
                .peak_buffered_bits(),
        );
    }
    assert!(peaks[0] < peaks[1], "{peaks:?}");
    assert!(peaks[1] < peaks[2], "{peaks:?}");
}
