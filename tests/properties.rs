//! Cross-crate property-based tests: protocol invariants under arbitrary
//! parameters, adversarial inputs and interleavings. Runs on the in-tree
//! `dap-testkit` harness (deterministic, seeded, shrinking).

use crowdsense_dap::crypto::{Key, Mac80};
use crowdsense_dap::dap::wire::Announce;
use crowdsense_dap::dap::{DapParams, DapReceiver, DapSender};
use crowdsense_dap::game::dynamics::{evolve, ReplicatorField, TwoPopulationGame};
use crowdsense_dap::game::{DosGameParams, PopulationState};
use crowdsense_dap::simnet::{SimDuration, SimRng, SimTime};
use crowdsense_dap::tesla::ReservoirBuffer;
use dap_testkit::check;

/// DAP authenticates exactly the sender's messages under any
/// interleaving of forged announcements, for any buffer count.
#[test]
fn dap_soundness_under_arbitrary_floods() {
    check("dap_soundness_under_arbitrary_floods", |g| {
        let m = g.usize_in(1..12);
        let seed = g.any_u64();
        let forged_per_interval = g.u32_in(0..12);
        let intervals = g.u64_in(1..25);
        let params = DapParams::new(SimDuration(100), 1, 0, m);
        let mut sender = DapSender::new(&seed.to_le_bytes(), intervals as usize, params);
        let mut receiver = DapReceiver::new(sender.bootstrap(), b"prop");
        let mut rng = SimRng::new(seed);

        for i in 1..=intervals {
            let t_a = SimTime((i - 1) * 100 + 10);
            let t_r = SimTime(i * 100 + 10);
            let genuine = sender.announce(i, format!("real {i}").as_bytes()).unwrap();
            // Random interleaving position for the genuine copy.
            let pos = rng.below(u64::from(forged_per_interval) + 1);
            for k in 0..=forged_per_interval {
                if u64::from(k) == pos {
                    receiver.on_announce(&genuine, t_a, &mut rng);
                } else {
                    let mut mac = [0u8; 10];
                    rng.fill_bytes(&mut mac);
                    receiver.on_announce(
                        &Announce {
                            index: i,
                            mac: Mac80::from_slice(&mac).unwrap(),
                        },
                        t_a,
                        &mut rng,
                    );
                }
            }
            let _ = receiver.on_reveal(&sender.reveal(i).unwrap(), t_r);
            // Hard memory bound at all times.
            assert!(receiver.memory_bits() <= (m as u64) * 56);
        }
        for (idx, msg) in receiver.authenticated() {
            let expected = format!("real {idx}");
            assert_eq!(&msg[..], expected.as_bytes());
        }
        // With no forged traffic everything must authenticate.
        if forged_per_interval == 0 {
            assert_eq!(receiver.stats().authenticated, intervals);
        }
    });
}

/// Tampering any byte of the reveal (message or key) is always
/// rejected.
#[test]
fn dap_rejects_any_single_tampering() {
    check("dap_rejects_any_single_tampering", |g| {
        let seed = g.any_u64();
        let flip_key = g.any_bool();
        let byte = g.usize_in(0..10);
        let bit = g.u32_in(0..8) as u8;
        let params = DapParams::default();
        let mut sender = DapSender::new(&seed.to_le_bytes(), 4, params);
        let mut receiver = DapReceiver::new(sender.bootstrap(), b"prop2");
        let mut rng = SimRng::new(seed);
        let ann = sender.announce(1, b"ten bytes!").unwrap();
        receiver.on_announce(&ann, SimTime(10), &mut rng);
        let mut rev = sender.reveal(1).unwrap();
        if flip_key {
            let mut kb: [u8; 10] = rev.key.as_bytes().try_into().unwrap();
            kb[byte] ^= 1 << bit;
            rev.key = Key::from_slice(&kb).unwrap();
        } else {
            let mut mb = rev.message.to_vec();
            mb[byte] ^= 1 << bit;
            rev.message = mb;
        }
        let out = receiver.on_reveal(&rev, SimTime(110));
        assert!(!out.is_authenticated());
    });
}

/// Reservoir pool: never exceeds capacity; total stored+dropped equals
/// offered; survival of a marked item matching m/n within statistical
/// tolerance is covered by unit tests — here we check the structural
/// invariants for arbitrary offer counts.
#[test]
fn reservoir_structural_invariants() {
    check("reservoir_structural_invariants", |g| {
        let capacity = g.usize_in(1..20);
        let offers = g.u64_in(0..200);
        let seed = g.any_u64();
        let mut rng = SimRng::new(seed);
        let mut pool = ReservoirBuffer::new(capacity);
        for i in 0..offers {
            pool.offer(i, &mut rng);
            assert!(pool.len() <= capacity);
        }
        assert_eq!(pool.offered(), offers);
        assert_eq!(pool.len() as u64, offers.min(capacity as u64));
        // Stored entries are a subset of what was offered (no invention).
        for &e in pool.iter() {
            assert!(e < offers);
        }
    });
}

/// Replicator dynamics keep the state in the unit square and leave
/// every corner fixed, for any valid game parameters.
#[test]
fn replicator_respects_simplex() {
    check("replicator_respects_simplex", |g| {
        let p = g.f64_in(0.0, 0.999);
        let m = g.u32_in(1..100);
        let x0 = g.f64_in(0.001, 0.999);
        let y0 = g.f64_in(0.001, 0.999);
        let game = DosGameParams::paper_defaults(p, m).into_game();
        let t = evolve(&game, PopulationState::new(x0, y0), 2_000);
        for s in t.states() {
            assert!((0.0..=1.0).contains(&s.x()));
            assert!((0.0..=1.0).contains(&s.y()));
        }
        let field = ReplicatorField::new(&game);
        for &(cx, cy) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let (dx, dy) = field.derivative(PopulationState::new(cx, cy));
            assert_eq!((dx, dy), (0.0, 0.0));
        }
    });
}

/// Mean pay-offs are convex combinations of the strategy pay-offs.
#[test]
fn mean_payoff_is_bounded_by_strategies() {
    check("mean_payoff_is_bounded_by_strategies", |g| {
        let p = g.f64_in(0.0, 0.999);
        let m = g.u32_in(1..60);
        let x = g.f64_in(0.0, 1.0);
        let y = g.f64_in(0.0, 1.0);
        let game = DosGameParams::paper_defaults(p, m).into_game();
        let s = PopulationState::new(x, y);
        let d = game.mean_defender_payoff(s);
        let lo = game.payoff_defend(s).min(game.payoff_no_defend(s));
        let hi = game.payoff_defend(s).max(game.payoff_no_defend(s));
        assert!(d >= lo - 1e-9 && d <= hi + 1e-9);
        let a = game.mean_attacker_payoff(s);
        let lo = game.payoff_attack(s).min(game.payoff_no_attack(s));
        let hi = game.payoff_attack(s).max(game.payoff_no_attack(s));
        assert!(a >= lo - 1e-9 && a <= hi + 1e-9);
    });
}

/// The DAP wire codec round-trips every encodable frame and never
/// panics on arbitrary input bytes.
#[test]
fn codec_roundtrip_and_total_decode() {
    check("codec_roundtrip_and_total_decode", |g| {
        use crowdsense_dap::dap::codec::{decode, encode};
        use crowdsense_dap::dap::wire::{DapMessage, Reveal};
        let index = g.u64_in(0..u64::from(u32::MAX));
        let mac_bytes: [u8; 10] = g.byte_array();
        let msg = g.bytes(0..200);
        let garbage = g.bytes(0..64);
        let ann = DapMessage::Announce(Announce {
            index,
            mac: Mac80::from_slice(&mac_bytes).unwrap(),
        });
        assert_eq!(decode(&encode(&ann).unwrap()).unwrap(), ann);
        let rev = DapMessage::Reveal(Reveal {
            index,
            key: Key::derive(b"prop", &index.to_le_bytes()),
            message: msg,
        });
        assert_eq!(decode(&encode(&rev).unwrap()).unwrap(), rev);
        // Total decode: arbitrary bytes give Ok or Err, never a panic.
        let _ = decode(&garbage);
    });
}

/// The analytic presence probability is monotone in m and antitone
/// in p.
#[test]
fn presence_probability_monotonicity() {
    check("presence_probability_monotonicity", |g| {
        use crowdsense_dap::dap::analysis::authentic_presence;
        let p = g.f64_in(0.01, 0.99);
        let m = g.u32_in(1..99);
        assert!(authentic_presence(p, m + 1) >= authentic_presence(p, m));
        assert!(authentic_presence(p * 0.99, m) >= authentic_presence(p, m));
    });
}
