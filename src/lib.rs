//! # crowdsense-dap
//!
//! A production-quality reproduction of *"Toward Optimal DoS-Resistant
//! Authentication in Crowdsensing Networks via Evolutionary Game"*
//! (Ruan et al., ICDCS 2016).
//!
//! This umbrella crate re-exports the workspace's seven libraries:
//!
//! * [`crypto`] — SHA-256/HMAC, truncated MACs, one-way key chains;
//! * [`simnet`] — a deterministic discrete-event network simulator;
//! * [`tesla`] — TESLA, μTESLA, multi-level μTESLA, TESLA++, EFTP, EDRP;
//! * [`dap`] — the paper's DoS-Resistant Authentication Protocol and its
//!   QoS-balanced adaptive variant;
//! * [`game`] — the attacker/defender evolutionary game: replicator
//!   dynamics, ESS analysis and the buffer-count optimiser;
//! * [`net`] — the real-wire runtime: UDP/loopback transports, a paced
//!   sender pump, a sharded multi-threaded receiver pool with
//!   backpressure, and the live flooder adversary;
//! * [`obs`] — the observability plane: streaming histograms, gauges,
//!   wall/manual stopwatches and structured trace events shared by the
//!   simulator and the wire runtime.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use crowdsense_dap::dap::{DapParams, DapReceiver, DapSender};
//! use crowdsense_dap::simnet::{SimRng, SimTime};
//!
//! let params = DapParams::default(); // 100-tick intervals, d = 1, m = 8
//! let mut sender = DapSender::new(b"base station secret", 64, params);
//! let mut receiver = DapReceiver::new(sender.bootstrap(), b"receiver local secret");
//! let mut rng = SimRng::new(7);
//!
//! // Interval 1: the sender announces only (MAC, index) — 112 bits.
//! let announce = sender.announce(1, b"reading: 21.5C").unwrap();
//! receiver.on_announce(&announce, SimTime(10), &mut rng);
//!
//! // Interval 2: the message and key are revealed together.
//! let reveal = sender.reveal(1).expect("announced above");
//! let outcome = receiver.on_reveal(&reveal, SimTime(110));
//! assert!(outcome.is_authenticated());
//! ```

pub use dap_core as dap;
pub use dap_crypto as crypto;
pub use dap_game as game;
pub use dap_net as net;
pub use dap_obs as obs;
pub use dap_simnet as simnet;
pub use dap_tesla as tesla;
