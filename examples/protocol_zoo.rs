//! The whole protocol family side by side: identical traffic, loss and
//! flood conditions for TESLA, μTESLA, TESLA++ and DAP, plus the
//! two-level protocols (multi-level μTESLA and EDRP) under a CDM flood.
//!
//! Run with: `cargo run --example protocol_zoo`

use crowdsense_dap::dap::sim::{DapFloodAttacker, DapReceiverNode, DapSenderNode};
use crowdsense_dap::dap::{DapParams, DapSender};
use crowdsense_dap::simnet::{
    ChannelModel, EnergyModel, FloodIntensity, Network, SimDuration, SimTime,
};
use crowdsense_dap::tesla::edrp::{EdrpReceiver, EdrpSender};
use crowdsense_dap::tesla::multilevel::{
    Linkage, MultiLevelParams, MultiLevelReceiver, MultiLevelSender,
};
use crowdsense_dap::tesla::mutesla::MuTeslaSender;
use crowdsense_dap::tesla::sim::{TeslaFloodAttacker, TeslaReceiverNode, TeslaSenderNode};
use crowdsense_dap::tesla::sim_ml::{
    CdmFloodAttacker, EdrpReceiverNode, MlNet, MlReceiverNode, MlSenderNode,
};
use crowdsense_dap::tesla::sim_mu::{
    MuTeslaReceiverNode, MuTeslaSenderNode, TeslaPpFloodAttacker, TeslaPpReceiverNode,
    TeslaPpSenderNode,
};
use crowdsense_dap::tesla::tesla::TeslaSender;
use crowdsense_dap::tesla::teslapp::TeslaPpSender;
use crowdsense_dap::tesla::TeslaParams;

const INTERVALS: u64 = 100;
const LOSS: f64 = 0.05;
const FLOOD: f64 = 0.8;
const SEED: u64 = 2016;

struct Row {
    protocol: &'static str,
    authenticated: u64,
    sent: u64,
    peak_bits: u64,
    bounded: &'static str,
    /// Radio energy per authenticated message (CC2420 model), mJ.
    mj_per_auth: f64,
}

fn channel() -> ChannelModel {
    ChannelModel::lossy(LOSS).with_delay(SimDuration(1))
}

fn energy_per_auth<M: Clone + 'static>(net: &Network<M>, authenticated: u64) -> f64 {
    EnergyModel::cc2420()
        .per_unit_mj(net.metrics(), authenticated)
        .unwrap_or(f64::INFINITY)
}

fn tesla_row() -> Row {
    let params = TeslaParams::new(SimDuration(100), 2, 0);
    let sender = TeslaSender::new(b"zoo-tesla", INTERVALS as usize, params);
    let bootstrap = sender.bootstrap();
    let mut net = Network::new(SEED);
    net.add_node(
        TeslaSenderNode::new(sender, 1, b"z".to_vec()),
        ChannelModel::perfect(),
    );
    net.add_node(
        TeslaFloodAttacker::new(
            bootstrap,
            FloodIntensity::of_bandwidth(FLOOD),
            1,
            INTERVALS,
            25,
        ),
        ChannelModel::perfect(),
    );
    let rx = net.add_node(TeslaReceiverNode::new(bootstrap), channel());
    net.run_until(SimTime((INTERVALS + 4) * 100));
    let node = net.node_as::<TeslaReceiverNode>(rx).unwrap();
    let authenticated = node.receiver().authenticated().len() as u64;
    Row {
        protocol: "TESLA",
        authenticated,
        sent: INTERVALS,
        peak_bits: node.peak_buffered_bits(),
        bounded: "no",
        mj_per_auth: energy_per_auth(&net, authenticated),
    }
}

fn mutesla_row() -> Row {
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let sender = MuTeslaSender::new(b"zoo-mu", INTERVALS as usize + 2, params);
    let bootstrap = sender.bootstrap();
    let mut net = Network::new(SEED);
    net.add_node(
        MuTeslaSenderNode::new(sender, INTERVALS, 1, b"z".to_vec()),
        ChannelModel::perfect(),
    );
    let rx = net.add_node(MuTeslaReceiverNode::new(bootstrap), channel());
    net.run_until(SimTime((INTERVALS + 4) * 100));
    let node = net.node_as::<MuTeslaReceiverNode>(rx).unwrap();
    let authenticated = node.receiver().authenticated().len() as u64;
    Row {
        protocol: "muTESLA (no flood defense run)",
        authenticated,
        sent: INTERVALS,
        peak_bits: node.receiver().buffered_count() as u64 * 312,
        bounded: "no",
        mj_per_auth: energy_per_auth(&net, authenticated),
    }
}

fn teslapp_row() -> Row {
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let sender = TeslaPpSender::new(b"zoo-pp", INTERVALS as usize + 2, params);
    let bootstrap = sender.bootstrap();
    let mut net = Network::new(SEED);
    net.add_node(
        TeslaPpSenderNode::new(sender, INTERVALS, b"z".to_vec()),
        ChannelModel::perfect(),
    );
    net.add_node(
        TeslaPpFloodAttacker::new(params, FloodIntensity::of_bandwidth(FLOOD), 1, INTERVALS),
        ChannelModel::perfect(),
    );
    let rx = net.add_node(TeslaPpReceiverNode::new(bootstrap, b"zoo"), channel());
    net.run_until(SimTime((INTERVALS + 4) * 100));
    let node = net.node_as::<TeslaPpReceiverNode>(rx).unwrap();
    let authenticated = node.receiver().authenticated().len() as u64;
    Row {
        protocol: "TESLA++",
        authenticated,
        sent: INTERVALS,
        peak_bits: node.peak_stored_bits(),
        bounded: "entry size only",
        mj_per_auth: energy_per_auth(&net, authenticated),
    }
}

fn dap_row(buffers: usize) -> Row {
    let params = DapParams::default().with_buffers(buffers);
    let sender = DapSender::new(b"zoo-dap", INTERVALS as usize, params);
    let bootstrap = sender.bootstrap();
    let mut net = Network::new(SEED);
    net.add_node(
        DapSenderNode::new(sender, 1, b"z".to_vec()),
        ChannelModel::perfect(),
    );
    net.add_node(
        DapFloodAttacker::new(bootstrap, FloodIntensity::of_bandwidth(FLOOD), 1, INTERVALS),
        ChannelModel::perfect(),
    );
    let rx = net.add_node(DapReceiverNode::new(bootstrap, b"zoo"), channel());
    net.run_until(SimTime((INTERVALS + 4) * 100));
    let node = net.node_as::<DapReceiverNode>(rx).unwrap();
    let authenticated = node.receiver().stats().authenticated;
    Row {
        protocol: if buffers >= 5 {
            "DAP (m = 5)"
        } else {
            "DAP (m = 2)"
        },
        authenticated,
        sent: INTERVALS,
        peak_bits: node.peak_memory_bits(),
        bounded: "yes (m x 56 b)",
        mj_per_auth: energy_per_auth(&net, authenticated),
    }
}

fn main() {
    println!("Protocol zoo — {INTERVALS} intervals, {LOSS} channel loss, p = {FLOOD} flood");
    println!();
    println!(
        "{:<34} {:>8} {:>8} {:>12} {:>16} {:>12}",
        "protocol", "auth", "sent", "peak bits", "memory bound", "mJ/auth"
    );
    println!("{}", "-".repeat(97));
    for row in [
        tesla_row(),
        mutesla_row(),
        teslapp_row(),
        dap_row(2),
        dap_row(5),
    ] {
        println!(
            "{:<34} {:>8} {:>8} {:>12} {:>16} {:>12.3}",
            row.protocol, row.authenticated, row.sent, row.peak_bits, row.bounded, row.mj_per_auth
        );
    }

    // Two-level protocols under a CDM flood.
    println!();
    println!("Two-level protocols, 20 high intervals, 20 forged CDMs per interval:");
    let p = MultiLevelParams::new(SimDuration(25), 4, 20, 3, Linkage::Eftp);
    let ml_sender = MultiLevelSender::new(b"zoo-ml", p);
    let ml_bootstrap = ml_sender.bootstrap();
    let mut net: Network<MlNet> = Network::new(SEED);
    net.add_node(
        MlSenderNode::multilevel(ml_sender, 1, b"z".to_vec()),
        ChannelModel::perfect(),
    );
    net.add_node(CdmFloodAttacker::new(p, 20), ChannelModel::perfect());
    let ml_rx = net.add_node(
        MlReceiverNode::new(MultiLevelReceiver::new(ml_bootstrap)),
        channel(),
    );
    net.run_until(SimTime(24 * 100));
    let ml = net
        .node_as::<MlReceiverNode>(ml_rx)
        .unwrap()
        .receiver()
        .stats();

    let e_sender = EdrpSender::new(b"zoo-edrp", p);
    let e_bootstrap = e_sender.bootstrap();
    let mut net2: Network<MlNet> = Network::new(SEED);
    net2.add_node(
        MlSenderNode::edrp(e_sender, 1, b"z".to_vec()),
        ChannelModel::perfect(),
    );
    net2.add_node(CdmFloodAttacker::edrp(p, 20), ChannelModel::perfect());
    let e_rx = net2.add_node(
        EdrpReceiverNode::new(EdrpReceiver::new(e_bootstrap)),
        channel(),
    );
    net2.run_until(SimTime(24 * 100));
    let edrp_node = net2.node_as::<EdrpReceiverNode>(e_rx).unwrap();
    let edrp = edrp_node.receiver().stats();
    let edrp_low = edrp_node.receiver().inner().stats();

    println!(
        "  multi-level muTESLA: {} CDMs authenticated, {} chains recovered via F01, {} data packets authenticated",
        ml.cdm_authenticated, ml.chain_recoveries, ml.low_authenticated
    );
    println!(
        "  EDRP:                {} CDMs instant, {} buffered, {} forged rejected by hash, {} data packets authenticated",
        edrp.cdm_instant, edrp.cdm_buffered, edrp.cdm_rejected_by_hash, edrp_low.low_authenticated
    );
    println!();
    println!("Reading: TESLA's buffer balloons under the flood; TESLA++ bounds entry");
    println!("size but not count; DAP caps memory at m x 56 bits and trades a bounded,");
    println!("tunable authentication probability (1 - p^m) for it — the knob the");
    println!("evolutionary game then optimises.");
}
