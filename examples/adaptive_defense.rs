//! QoS-balanced DAP in action: the evolutionary-game controller watches
//! the authentication outcomes, estimates the attack level, and
//! re-provisions the buffer pool each epoch — including "giving up" on
//! extra buffers when the channel is nearly jammed.
//!
//! Run with: `cargo run --example adaptive_defense`

use crowdsense_dap::crypto::Mac80;
use crowdsense_dap::dap::wire::Announce;
use crowdsense_dap::dap::{AdaptiveConfig, AdaptiveController, DapParams, DapReceiver, DapSender};
use crowdsense_dap::game::cost::naive_defense_cost;
use crowdsense_dap::game::DosGameParams;
use crowdsense_dap::simnet::{SimRng, SimTime};

/// Attack intensity per epoch: calm → moderate → severe → jammed → calm.
const EPOCH_ATTACK: &[f64] = &[0.0, 0.5, 0.75, 0.8, 0.9, 0.96, 0.99, 0.99, 0.5];
const INTERVALS_PER_EPOCH: u64 = 150;

fn main() {
    let mut params = DapParams::default();
    let mut sender = DapSender::new(
        b"adaptive demo",
        EPOCH_ATTACK.len() * INTERVALS_PER_EPOCH as usize + 2,
        params,
    );
    let mut receiver = DapReceiver::new(sender.bootstrap(), b"adaptive node");
    let mut controller = AdaptiveController::new(AdaptiveConfig {
        smoothing: 0.8,
        ..AdaptiveConfig::paper_defaults()
    });
    let mut rng = SimRng::new(99);

    println!("Adaptive (QoS-balanced) DAP");
    println!("===========================");
    println!(
        "{:>5} {:>8} {:>8} {:>6} {:>10} {:>12} {:>10} {:>8}",
        "epoch", "true p", "est p", "m", "ESS", "E (game)", "N (naive)", "rate"
    );
    println!("{}", "-".repeat(76));

    let mut interval = 0u64;
    for (epoch, &p) in EPOCH_ATTACK.iter().enumerate() {
        let before = *receiver.stats();
        let mut authenticated_epoch = 0u64;

        for _ in 0..INTERVALS_PER_EPOCH {
            interval += 1;
            let t_a = SimTime((interval - 1) * 100 + 10);
            let t_r = SimTime(interval * 100 + 10);
            let genuine = sender.announce(interval, b"reading").unwrap();
            // Forged copies to make forged fraction = p.
            let forged = if p > 0.0 {
                (p / (1.0 - p)).round() as u32
            } else {
                0
            };
            for _ in 0..forged {
                let mut mac = [0u8; 10];
                rng.fill_bytes(&mut mac);
                receiver.on_announce(
                    &Announce {
                        index: interval,
                        mac: Mac80::from_slice(&mac).unwrap(),
                    },
                    t_a,
                    &mut rng,
                );
            }
            receiver.on_announce(&genuine, t_a, &mut rng);
            if receiver
                .on_reveal(&sender.reveal(interval).unwrap(), t_r)
                .is_authenticated()
            {
                authenticated_epoch += 1;
            }
        }

        // Epoch boundary: estimate p from this epoch's counters, consult
        // the game, re-provision.
        let after = *receiver.stats();
        let epoch_stats = crowdsense_dap::dap::DapStats {
            announces_offered: after.announces_offered - before.announces_offered,
            authenticated: after.authenticated - before.authenticated,
            ..Default::default()
        };
        controller.observe_stats(&epoch_stats);
        let policy = controller.recommend();
        receiver.set_buffers(policy.buffers as usize);
        params = params.with_buffers(policy.buffers as usize);

        let naive = if policy.estimated_p > 0.0 {
            naive_defense_cost(
                DosGameParams {
                    ra: 200.0,
                    k1: 20.0,
                    k2: 4.0,
                    p: policy.estimated_p,
                    m: 1,
                },
                50,
            )
        } else {
            4.0 * 50.0
        };

        println!(
            "{:>5} {:>8.2} {:>8.2} {:>6} {:>10} {:>12.2} {:>10.2} {:>8.3}{}",
            epoch,
            p,
            policy.estimated_p,
            policy.buffers,
            policy.ess.kind.to_string(),
            policy.expected_cost,
            naive,
            authenticated_epoch as f64 / INTERVALS_PER_EPOCH as f64,
            if policy.is_give_up() {
                "  << give-up regime"
            } else {
                ""
            },
        );
    }

    println!();
    println!("Note how m tracks the attack level, and how past p ≈ 0.94 the game");
    println!("stops buying buffers: the ESS moves to (X', 1) and the cost pins at R_a,");
    println!("far below the naive always-defend-with-M-buffers policy.");
}
