//! The boundary-eviction attack this reproduction uncovered — and why
//! DAP's per-interval reservoir pools defeat it.
//!
//! A receiver with one *shared* pool of m buffers can be starved by an
//! attacker that bursts forged copies for interval i+1 exactly at the
//! boundary: the burst evicts interval i's still-pending entries before
//! its reveal arrives. Scoping the reservoir per pending interval (as
//! `DapReceiver` does) restores the paper's P = 1 - p^m guarantee no
//! matter how the attacker times its flood.
//!
//! Run with: `cargo run --example boundary_attack`

use crowdsense_dap::dap::sim::{DapFloodAttacker, DapReceiverNode, DapSenderNode};
use crowdsense_dap::dap::{DapParams, DapSender};
use crowdsense_dap::simnet::{ChannelModel, FloodIntensity, Network, SimDuration, SimTime};

fn run(front_running: bool) -> f64 {
    let params = DapParams::default().with_buffers(3);
    let intervals = 1000u64;
    let sender = DapSender::new(b"boundary", intervals as usize, params);
    let bootstrap = sender.bootstrap();
    let mut net = Network::new(42);
    net.add_node(
        DapSenderNode::new(sender, 1, b"r".to_vec()),
        ChannelModel::perfect(),
    );
    let attacker =
        DapFloodAttacker::new(bootstrap, FloodIntensity::of_bandwidth(0.8), 1, intervals);
    net.add_node(
        if front_running {
            attacker.front_running()
        } else {
            attacker
        },
        ChannelModel::perfect(),
    );
    let rx = net.add_node(
        DapReceiverNode::new(bootstrap, b"rx"),
        ChannelModel::perfect().with_delay(SimDuration(1)),
    );
    net.run_until(SimTime((intervals + 3) * 100));
    let stats = net
        .node_as::<DapReceiverNode>(rx)
        .unwrap()
        .receiver()
        .stats();
    stats.authenticated as f64 / stats.reveals.max(1) as f64
}

fn main() {
    println!("Boundary-eviction attack demo (p = 0.8, m = 3, 1000 intervals)");
    println!("reservoir scope: per pending interval (DapReceiver)");
    println!();
    let trailing = run(false);
    let front = run(true);
    println!("  flood after the genuine announce:  rate = {trailing:.3}");
    println!("  flood bursting at interval start:  rate = {front:.3}");
    println!("  reservoir prediction m/n = 3/5:    rate = 0.600");
    println!();
    println!("With a single shared pool the front-running burst would evict the");
    println!("previous interval's entries before its reveal and drive the rate to");
    println!("~0.2; per-interval pools make the flood's timing irrelevant.");
}
