//! Quickstart: authenticate broadcast messages with DAP, then watch the
//! multi-buffer selection shrug off a flooding attacker.
//!
//! Run with: `cargo run --example quickstart`

use crowdsense_dap::crypto::Mac80;
use crowdsense_dap::dap::wire::Announce;
use crowdsense_dap::dap::{DapParams, DapReceiver, DapSender};
use crowdsense_dap::simnet::{SimRng, SimTime};

fn main() {
    // --- 1. Plain protocol flow -----------------------------------------
    // 100-tick intervals, key disclosure one interval later, 4 buffers.
    let params = DapParams::default().with_buffers(4);
    let mut sender = DapSender::new(b"base station secret", 600, params);
    let mut receiver = DapReceiver::new(sender.bootstrap(), b"node 17 local secret");
    let mut rng = SimRng::new(2016);

    println!("DAP quickstart");
    println!("==============");

    // Interval 1: broadcast (MAC, index) — 112 bits on the air.
    let announce = sender
        .announce(1, b"pm2.5=12ug/m3 @ (31.02N, 121.43E)")
        .unwrap();
    println!(
        "interval 1: announced MAC {} for index {}",
        announce.mac, announce.index
    );
    receiver.on_announce(&announce, SimTime(10), &mut rng);
    println!(
        "            receiver buffers a 56-bit entry ({} bits used of {})",
        receiver.memory_bits(),
        receiver.memory_capacity_bits()
    );

    // Interval 2: reveal (message, key, index).
    let reveal = sender.reveal(1).expect("announced above");
    let outcome = receiver.on_reveal(&reveal, SimTime(110));
    println!("interval 2: reveal processed → {outcome:?}");
    assert!(outcome.is_authenticated());

    // --- 2. The same flow under a DoS flood ------------------------------
    println!();
    println!("Under an 80% flood (p = 0.8), m = 4 buffers");
    println!("--------------------------------------------");
    let mut authenticated = 0u32;
    let rounds = 500u64;
    for i in 2..2 + rounds {
        let t_announce = SimTime((i - 1) * 100 + 10);
        let t_reveal = SimTime(i * 100 + 10);
        let genuine = sender.announce(i, b"genuine reading").unwrap();
        // The attacker injects 4 forged copies per genuine one (p = 0.8).
        for _ in 0..4 {
            let mut mac = [0u8; 10];
            rng.fill_bytes(&mut mac);
            let forged = Announce {
                index: i,
                mac: Mac80::from_slice(&mac).unwrap(),
            };
            receiver.on_announce(&forged, t_announce, &mut rng);
        }
        receiver.on_announce(&genuine, t_announce, &mut rng);
        if receiver
            .on_reveal(&sender.reveal(i).unwrap(), t_reveal)
            .is_authenticated()
        {
            authenticated += 1;
        }
        assert!(receiver.memory_bits() <= receiver.memory_capacity_bits());
    }
    let rate = f64::from(authenticated) / rounds as f64;
    println!("authenticated {authenticated}/{rounds} messages (rate {rate:.3})");
    println!("theory: the authentic copy is 1 of 5 competing for 4 buffers → 4/5 = 0.8");
    println!(
        "memory never exceeded the provisioned bound of {} bits",
        receiver.memory_capacity_bits()
    );
    println!();
    println!("stats: {:?}", receiver.stats());
}
