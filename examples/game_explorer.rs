//! Explore the attacker/defender evolutionary game: fixed points, ESS
//! candidates with stability verdicts, the predicted outcome from the
//! paper's (0.5, 0.5) start, and the cost landscape over m.
//!
//! Run with: `cargo run --example game_explorer -- [p] [m]`
//! (defaults: p = 0.8, m = 30)

use crowdsense_dap::game::cost::{defense_cost, naive_defense_cost};
use crowdsense_dap::game::ess::{ess_candidates, predict_ess};
use crowdsense_dap::game::optimize::optimal_buffer_count;
use crowdsense_dap::game::{DosGameParams, ReplicatorField};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.8);
    let m: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);

    let params = DosGameParams::paper_defaults(p, m);
    let game = params.into_game();

    println!("Evolutionary game explorer  (R_a = 200, k1 = 20, k2 = 4)");
    println!("=========================================================");
    println!(
        "p = x_a = {p},  m = {m},  attack success P = p^m = {:.4e}",
        game.attack_success()
    );
    println!();

    println!("ESS candidates (Jacobian stability at each):");
    for c in ess_candidates(&game) {
        println!(
            "  {:<10} at {}  {}",
            c.kind.to_string(),
            c.point,
            if c.stable { "STABLE" } else { "unstable" }
        );
    }

    let outcome = predict_ess(&game);
    println!();
    println!(
        "replicator dynamics from (0.5, 0.5): settle at {} — ESS {}{}",
        outcome.point,
        outcome.kind,
        outcome
            .steps
            .map_or(String::from(" (step limit hit)"), |s| format!(
                " after {s} Euler steps"
            )),
    );
    println!(
        "defender cost at the ESS: E = {:.3}",
        defense_cost(&game, outcome.point)
    );

    let field = ReplicatorField::new(&game);
    let (dx, dy) = field.derivative(outcome.point);
    println!("field at the settle point: (dX/dt, dY/dt) = ({dx:.2e}, {dy:.2e})");

    println!();
    println!("Algorithm 3 over m = 1..=50 at this attack level:");
    let opt = optimal_buffer_count(DosGameParams::paper_defaults(p, 1), 50);
    println!(
        "  optimal m* = {} with cost E = {:.3} (ESS {})",
        opt.m, opt.cost, opt.ess.kind
    );
    println!(
        "  naive defense (m = 50 for everyone): N = {:.3}",
        naive_defense_cost(DosGameParams::paper_defaults(p, 1), 50)
    );
    println!();
    println!("cost landscape (every 5th m):");
    for (mm, cost) in opt
        .landscape
        .iter()
        .filter(|(mm, _)| mm % 5 == 0 || *mm == 1)
    {
        let bar_len = (cost / 4.0).round() as usize;
        println!(
            "  m={mm:>3}  E={cost:>8.2}  {}",
            "#".repeat(bar_len.min(70))
        );
    }
}
