//! A simulated crowdsensing campaign: one task distributor (base
//! station), a fleet of mobile participants on lossy channels with
//! skewed clocks, and a flooding attacker.
//!
//! Shows the end-to-end system the paper targets: broadcast task
//! authentication surviving both low-QoS channels and a DoS flood.
//!
//! Run with: `cargo run --example crowdsensing_campaign`

use crowdsense_dap::dap::sim::{DapFloodAttacker, DapReceiverNode, DapSenderNode};
use crowdsense_dap::dap::{DapParams, DapSender};
use crowdsense_dap::simnet::{
    ChannelModel, ClockOffsets, FloodIntensity, Network, SimDuration, SimRng, SimTime,
};

fn main() {
    let attack = 0.8;
    let buffers = 8;
    let participants = 20;
    let intervals = 200u64;

    println!("Crowdsensing campaign");
    println!("=====================");
    println!(
        "participants: {participants}, intervals: {intervals}, attack p = {attack}, m = {buffers}"
    );
    println!();

    // Loose synchronisation: clocks off by up to 5 ticks (Δ matches the
    // receiver's safety margin).
    let params = DapParams::new(SimDuration(100), 1, 5, buffers);
    let sender = DapSender::new(b"campaign 2016-07", intervals as usize, params);
    let bootstrap = sender.bootstrap();

    let mut net = Network::new(20160706);
    let mut offsets_rng = SimRng::new(7);
    let offsets = ClockOffsets::loose(5);

    net.add_node(
        DapSenderNode::new(sender, 1, b"task:measure-noise".to_vec()),
        ChannelModel::perfect(),
    );
    net.add_node(
        DapFloodAttacker::new(
            bootstrap,
            FloodIntensity::of_bandwidth(attack),
            1,
            intervals,
        ),
        ChannelModel::perfect(),
    );

    let receivers: Vec<_> = (0..participants)
        .map(|i| {
            let seed = format!("participant-{i}");
            let channel = ChannelModel::lossy(0.05)
                .with_delay(SimDuration(1))
                .with_jitter(SimDuration(3));
            net.add_node_with_offset(
                DapReceiverNode::new(bootstrap, seed.as_bytes()),
                channel,
                offsets.sample(&mut offsets_rng),
            )
        })
        .collect();

    net.run_until(SimTime((intervals + 3) * 100));

    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>12}",
        "participant", "auth", "reveals", "rate", "peak bits"
    );
    println!("{}", "-".repeat(58));
    let mut total_auth = 0u64;
    let mut total_reveals = 0u64;
    for (i, id) in receivers.iter().enumerate() {
        let node = net.node_as::<DapReceiverNode>(*id).expect("receiver");
        let s = node.receiver().stats();
        total_auth += s.authenticated;
        total_reveals += s.reveals;
        println!(
            "{:<14} {:>8} {:>8} {:>10.3} {:>12}",
            format!("node-{i}"),
            s.authenticated,
            s.reveals,
            s.authenticated as f64 / s.reveals.max(1) as f64,
            node.peak_memory_bits(),
        );
    }
    println!("{}", "-".repeat(58));
    let fleet_rate = total_auth as f64 / total_reveals.max(1) as f64;
    println!("fleet authentication rate: {fleet_rate:.3}");
    println!(
        "theory (reservoir, 1 authentic of 5 copies, m = {buffers}): {:.3}",
        1.0_f64.min(buffers as f64 / 5.0)
    );
    println!();
    println!("network metrics:");
    for (k, v) in net.metrics().iter() {
        println!("  {k:<32} {v}");
    }
}
